package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestStageNamesStable(t *testing.T) {
	// These names are the BENCH.json contract; renaming one is a schema
	// change and must bump bench.SchemaVersion.
	want := []string{"forward", "backward", "dep_fetch_send", "dep_fetch_recv",
		"mirror_scatter", "grad_sync", "barrier", "checkpoint"}
	got := StageNames()
	if len(got) != len(want) {
		t.Fatalf("StageNames: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stage %d: got %q, want %q", i, got[i], want[i])
		}
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage must stringify as unknown")
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var rec *FlightRecorder
	rec.BeginEpoch(1, 2, 2)
	rec.AddTraffic(0, StageDepFetchSend, 1, 100, 1)
	rec.AddTime(0, StageBarrier, 0, time.Millisecond)
	rec.EndEpoch(time.Second, 0.5)
	if got := rec.Snapshot(); got != nil {
		t.Fatalf("nil recorder snapshot: %v", got)
	}
	if rec.Epochs() != 0 {
		t.Fatal("nil recorder must report 0 epochs")
	}
	c := rec.Clock(0)
	if c != nil {
		t.Fatal("nil recorder must hand out nil clocks")
	}
	c.Switch(StageForward, 1) // must not panic
	c.End()
}

func TestFlightRecorderNoOpenEpoch(t *testing.T) {
	rec := NewFlightRecorder()
	// Attribution outside BeginEpoch/EndEpoch (e.g. inference traffic) is
	// dropped, not misfiled into a neighbouring epoch.
	rec.AddTraffic(0, StageDepFetchSend, 1, 999, 1)
	if rec.Clock(0) != nil {
		t.Fatal("Clock must be nil with no open epoch")
	}
	rec.EndEpoch(time.Second, 0) // no-op
	if rec.Epochs() != 0 {
		t.Fatal("no record should exist")
	}
	rec.BeginEpoch(1, 1, 2)
	rec.AddTraffic(0, StageDepFetchSend, 1, 100, 1)
	rec.EndEpoch(time.Second, 0.25)
	recs := rec.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	if got := recs[0].StageBytes(StageDepFetchSend.String()); got != 100 {
		t.Fatalf("dep_fetch_send bytes = %d, want 100 (pre-epoch traffic must not leak in)", got)
	}
	if recs[0].Loss != 0.25 || recs[0].Epoch != 1 || recs[0].Workers != 1 || recs[0].Layers != 2 {
		t.Fatalf("record header wrong: %+v", recs[0])
	}
}

func TestStageClockExclusiveAttribution(t *testing.T) {
	rec := NewFlightRecorder()
	rec.BeginEpoch(3, 1, 2)
	start := time.Now()
	sc := rec.Clock(0)
	if sc == nil {
		t.Fatal("clock must be non-nil with an open epoch")
	}
	time.Sleep(10 * time.Millisecond)
	sc.Switch(StageBackward, 2)
	time.Sleep(10 * time.Millisecond)
	sc.Switch(StageGradSync, 0)
	time.Sleep(5 * time.Millisecond)
	sc.End()
	span := time.Since(start).Seconds()
	rec.EndEpoch(time.Since(start), 0)

	recs := rec.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	r := &recs[0]
	var sum float64
	for _, c := range r.Cells {
		sum += c.Seconds
	}
	// The clock is gap-free: the stage sum must equal the clock's lifetime.
	// Allow 2% plus a small absolute slack for the instants outside the
	// clock's life (Clock() and End() calls themselves).
	if math.Abs(sum-span) > 0.02*span+time.Millisecond.Seconds() {
		t.Fatalf("stage sum %.6fs vs span %.6fs: gap too large", sum, span)
	}
	if r.StageSeconds("forward") < 0.009 {
		t.Fatalf("forward got %.6fs, want ≥ ~10ms", r.StageSeconds("forward"))
	}
	if r.StageSeconds("backward") < 0.009 {
		t.Fatalf("backward got %.6fs, want ≥ ~10ms", r.StageSeconds("backward"))
	}
	if r.StageSeconds("grad_sync") < 0.004 {
		t.Fatalf("grad_sync got %.6fs, want ≥ ~5ms", r.StageSeconds("grad_sync"))
	}
	if got := r.LayerStageSeconds("backward", 2); got < 0.009 {
		t.Fatalf("backward layer 2 got %.6fs", got)
	}
}

func TestStageClockLayerClamp(t *testing.T) {
	rec := NewFlightRecorder()
	rec.BeginEpoch(1, 1, 2)
	// Out-of-range layers clamp to the edge cells instead of corrupting
	// neighbours or panicking (defensive: protocol tags like the param
	// server's phase field must not index out of the layer range).
	rec.AddTraffic(0, StageGradSync, 99, 10, 1)
	rec.AddTraffic(0, StageGradSync, -5, 10, 1)
	rec.AddTraffic(-1, StageGradSync, 0, 10, 1) // bad worker: dropped
	rec.AddTraffic(7, StageGradSync, 0, 10, 1)  // bad worker: dropped
	rec.EndEpoch(time.Second, 0)
	r := rec.Snapshot()[0]
	if got := r.StageBytes("grad_sync"); got != 20 {
		t.Fatalf("grad_sync bytes = %d, want 20", got)
	}
	if got := r.LayerStageSeconds("grad_sync", 0); got != 0 {
		t.Fatalf("unexpected time cells: %v", got)
	}
}

// TestFlightRecorderConcurrent is the race-detector test: per-worker clocks,
// cross-goroutine traffic attribution, snapshots and epoch turnover all run
// concurrently, as they do in the engine.
func TestFlightRecorderConcurrent(t *testing.T) {
	rec := NewFlightRecorder()
	const workers, epochs = 4, 5
	var snapWG sync.WaitGroup
	for e := 1; e <= epochs; e++ {
		rec.BeginEpoch(e, workers, 2)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sc := rec.Clock(w)
				for i := 0; i < 200; i++ {
					sc.Switch(StageForward, 1)
					rec.AddTraffic(w, StageDepFetchSend, 1, 64, 1)
					sc.Switch(StageDepFetchRecv, 2)
					rec.AddTraffic((w+1)%workers, StageDepFetchRecv, 2, 64, 1)
					sc.Switch(StageBackward, 1)
				}
				sc.End()
			}(w)
		}
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			_ = rec.Snapshot()
			rec.AddTime(0, StageBarrier, 0, time.Microsecond)
		}()
		wg.Wait()
		rec.EndEpoch(time.Millisecond, float64(e))
	}
	snapWG.Wait()
	recs := rec.Snapshot()
	if len(recs) != epochs {
		t.Fatalf("got %d records, want %d", len(recs), epochs)
	}
	for _, r := range recs {
		wantMsgs := int64(workers * 200)
		if got := r.StageMsgs("dep_fetch_send"); got != wantMsgs {
			t.Fatalf("epoch %d: send msgs %d, want %d", r.Epoch, got, wantMsgs)
		}
		if got := r.StageBytes("dep_fetch_recv"); got != wantMsgs*64 {
			t.Fatalf("epoch %d: recv bytes %d, want %d", r.Epoch, got, wantMsgs*64)
		}
		if r.TotalBytes() != 2*wantMsgs*64 {
			t.Fatalf("epoch %d: total bytes %d", r.Epoch, r.TotalBytes())
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %v", got)
	}
	reg := NewRegistry()
	h := reg.Histogram("ns_test_quantile", "", []float64{10, 20, 40})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v", got)
	}
	// 10 samples in (0,10], 10 in (10,20], none in (20,40].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	// Median: rank 10 lands exactly at the boundary of bucket 1 → 10.
	if got := h.Quantile(0.5); math.Abs(got-10) > 1e-9 {
		t.Fatalf("p50 = %v, want 10", got)
	}
	// p75: rank 15, 5 into bucket (10,20] of count 10 → 15.
	if got := h.Quantile(0.75); math.Abs(got-15) > 1e-9 {
		t.Fatalf("p75 = %v, want 15", got)
	}
	// p25: rank 5, halfway through bucket (0,10] → 5.
	if got := h.Quantile(0.25); math.Abs(got-5) > 1e-9 {
		t.Fatalf("p25 = %v, want 5", got)
	}
	if got := h.Quantile(1); math.Abs(got-20) > 1e-9 {
		t.Fatalf("p100 = %v, want 20 (top non-empty bucket bound)", got)
	}
	// Clamping.
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Fatalf("p<0 must clamp to p=0: %v vs %v", got, h.Quantile(0))
	}
	// A sample beyond the last finite bound: quantiles in the +Inf bucket
	// report the largest finite bound.
	h.Observe(1e9)
	if got := h.Quantile(1); math.Abs(got-40) > 1e-9 {
		t.Fatalf("p100 with +Inf sample = %v, want 40", got)
	}
}

func TestHistogramQuantileNoFiniteBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("ns_test_quantile_inf", "", nil)
	h.Observe(3)
	h.Observe(5)
	// Only the +Inf bucket exists: the mean is the only defensible estimate.
	if got := h.Quantile(0.5); math.Abs(got-4) > 1e-9 {
		t.Fatalf("quantile with no finite buckets = %v, want mean 4", got)
	}
}
