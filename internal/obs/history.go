package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// The metric history is the bridge between instantaneous counters and the
// questions operators actually ask ("what was the p99 over the last minute",
// "is the hit rate degrading"): a fixed-capacity ring buffer of whole-
// registry snapshots, taken periodically and/or at natural barriers (the
// engine samples at each epoch boundary), queryable as windowed time series
// via the /timeline endpoint. Counters are rendered as per-second rates,
// gauges as values, histograms as interval quantiles computed from bucket
// deltas — a true windowed p99, not the cumulative since-process-start
// estimate — which is also what the watchdog's SLO burn-rate rules consume.

const (
	// defaultHistoryCap bounds retained samples: ~10 minutes at the default
	// 1s sampling step.
	defaultHistoryCap = 600
	// DefaultHistoryStep is the periodic sampling interval Start uses when
	// given a non-positive step.
	DefaultHistoryStep = time.Second
)

// histSample is one whole-registry snapshot keyed by series.
type histSample struct {
	at     time.Time
	series map[string]SeriesSnapshot
}

// History is the fixed-capacity metric time-series ring buffer. All methods
// are safe for concurrent use; a nil *History is a no-op that answers empty
// timelines.
type History struct {
	reg  *Registry
	capN int

	mu       sync.Mutex
	ring     []histSample // chronological ring; oldest at head
	head, n  int
	onSample func()
	now      func() time.Time // test hook

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewHistory returns a history sampling reg (Default() when nil) with the
// given ring capacity (<= 0 selects defaultHistoryCap). It records nothing
// until Sample or Start is called.
func NewHistory(reg *Registry, capacity int) *History {
	if reg == nil {
		reg = Default()
	}
	if capacity <= 0 {
		capacity = defaultHistoryCap
	}
	return &History{
		reg:  reg,
		capN: capacity,
		ring: make([]histSample, capacity),
		now:  time.Now,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// SetOnSample registers a callback invoked after every recorded sample (the
// SLO watchdog evaluation hook). Call before Start.
func (h *History) SetOnSample(cb func()) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.onSample = cb
	h.mu.Unlock()
}

// Start launches the periodic sampler (step <= 0 selects DefaultHistoryStep),
// beginning with an immediate baseline sample — so activity inside the first
// step (a burst that beats the first tick) still forms an interval to
// difference against. Idempotent; Stop ends it.
func (h *History) Start(step time.Duration) {
	if h == nil {
		return
	}
	if step <= 0 {
		step = DefaultHistoryStep
	}
	h.startOnce.Do(func() {
		h.Sample(h.now())
		go func() {
			defer close(h.done)
			t := time.NewTicker(step)
			defer t.Stop()
			for {
				select {
				case <-h.stop:
					return
				case at := <-t.C:
					h.Sample(at)
				}
			}
		}()
	})
}

// Stop ends the periodic sampler and waits for it to exit. Safe to call
// without Start and more than once.
func (h *History) Stop() {
	if h == nil {
		return
	}
	h.stopOnce.Do(func() { close(h.stop) })
	h.startOnce.Do(func() { close(h.done) }) // never started: mark done
	<-h.done
}

// Sample records one whole-registry snapshot at the given time. Out-of-order
// timestamps (an epoch-barrier sample racing the ticker) are clamped to keep
// the ring chronological.
func (h *History) Sample(at time.Time) {
	if h == nil {
		return
	}
	snaps := h.reg.Gather()
	series := make(map[string]SeriesSnapshot, len(snaps))
	for _, sn := range snaps {
		series[sn.Key()] = sn
	}
	h.mu.Lock()
	if h.n > 0 {
		if last := h.ring[(h.head+h.n-1)%h.capN].at; !at.After(last) {
			at = last.Add(time.Nanosecond)
		}
	}
	if h.n < h.capN {
		h.ring[(h.head+h.n)%h.capN] = histSample{at: at, series: series}
		h.n++
	} else {
		h.ring[h.head] = histSample{at: at, series: series}
		h.head = (h.head + 1) % h.capN
	}
	cb := h.onSample
	h.mu.Unlock()
	if cb != nil {
		cb()
	}
}

// Len returns the number of retained samples.
func (h *History) Len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// samplesSince copies the retained samples with at >= cutoff, oldest first.
func (h *History) samplesSince(cutoff time.Time) []histSample {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]histSample, 0, h.n)
	for i := 0; i < h.n; i++ {
		s := h.ring[(h.head+i)%h.capN]
		if !s.at.Before(cutoff) {
			out = append(out, s)
		}
	}
	return out
}

// TimelinePoint is one (time, value) pair of a timeline series.
type TimelinePoint struct {
	UnixNano int64   `json:"t"`
	Value    float64 `json:"v"`
}

// TimelineSeries is one rendered series of a Timeline. A metric family can
// expand into several: a counter yields one "rate" series, a gauge one
// "value" series, and a histogram "rate", "p50" and "p99" series (interval
// quantiles from bucket deltas; quantile points with no observations in the
// interval are omitted). Exemplars carries the histogram's current bucket
// exemplars (most-recent traced observation per bucket, tail first) on the
// "p99" series only.
type TimelineSeries struct {
	Name      string            `json:"name"`
	Kind      string            `json:"kind"`
	Stat      string            `json:"stat"`
	Labels    map[string]string `json:"labels,omitempty"`
	Points    []TimelinePoint   `json:"points"`
	Exemplars []Exemplar        `json:"exemplars,omitempty"`
}

// Timeline answers one /timeline query.
type Timeline struct {
	StartUnixNano int64            `json:"start_unix_nano"`
	EndUnixNano   int64            `json:"end_unix_nano"`
	WindowSeconds float64          `json:"window_seconds"`
	StepSeconds   float64          `json:"step_seconds"`
	Samples       int              `json:"samples"`
	Series        []TimelineSeries `json:"series"`
}

// Query renders the retained history over the trailing window, thinned to at
// most one sample per step. Every series present in any in-window sample
// appears in the result, even when it has no renderable points yet (rates
// need two samples). Counter rates are reset-aware: a decrease is read as a
// restart from zero, so the increase is the new cumulative value.
func (h *History) Query(window, step time.Duration) *Timeline {
	if window <= 0 {
		window = time.Minute
	}
	if step <= 0 {
		step = DefaultHistoryStep
	}
	tl := &Timeline{
		WindowSeconds: window.Seconds(),
		StepSeconds:   step.Seconds(),
		Series:        []TimelineSeries{},
	}
	if h == nil {
		return tl
	}
	now := h.now()
	tl.StartUnixNano = now.Add(-window).UnixNano()
	tl.EndUnixNano = now.UnixNano()
	all := h.samplesSince(now.Add(-window))
	// Thin to one sample per step, always keeping the newest.
	var sel []histSample
	for i, s := range all {
		if len(sel) == 0 || !s.at.Before(sel[len(sel)-1].at.Add(step)) || i == len(all)-1 {
			sel = append(sel, s)
		}
	}
	tl.Samples = len(sel)
	if len(sel) == 0 {
		return tl
	}

	builders := make(map[string]*[]TimelineSeries)
	order := []string{}
	add := func(key string, mk func() []TimelineSeries) *[]TimelineSeries {
		if b, ok := builders[key]; ok {
			return b
		}
		ss := mk()
		builders[key] = &ss
		order = append(order, key)
		return &ss
	}
	for i, s := range sel {
		var prev *histSample
		if i > 0 {
			prev = &sel[i-1]
		}
		for key, sn := range s.series {
			sn := sn
			b := add(key, func() []TimelineSeries { return newTimelineSeries(sn) })
			appendPoints(*b, s.at, sn, prev, key)
		}
	}
	// Attach exemplars from the newest sample's histograms to the p99 series.
	newest := sel[len(sel)-1]
	for key, sn := range newest.series {
		if sn.Kind != "histogram" {
			continue
		}
		if b, ok := builders[key]; ok {
			for bi := range *b {
				if (*b)[bi].Stat == "p99" {
					(*b)[bi].Exemplars = tailExemplars(sn.Exemplars)
				}
			}
		}
	}
	sort.Strings(order)
	for _, key := range order {
		tl.Series = append(tl.Series, *builders[key]...)
	}
	return tl
}

// newTimelineSeries builds the (empty) series set one snapshot expands into.
func newTimelineSeries(sn SeriesSnapshot) []TimelineSeries {
	mk := func(stat string) TimelineSeries {
		return TimelineSeries{
			Name: sn.Name, Kind: sn.Kind, Stat: stat,
			Labels: sn.Labels(), Points: []TimelinePoint{},
		}
	}
	switch sn.Kind {
	case "counter":
		return []TimelineSeries{mk("rate")}
	case "gauge":
		return []TimelineSeries{mk("value")}
	default:
		return []TimelineSeries{mk("rate"), mk("p50"), mk("p99")}
	}
}

// appendPoints appends this sample's points to the series set. prev is the
// previous selected sample (nil for the first), used for rates and interval
// quantiles.
func appendPoints(b []TimelineSeries, at time.Time, sn SeriesSnapshot, prev *histSample, key string) {
	t := at.UnixNano()
	put := func(stat string, v float64) {
		for i := range b {
			if b[i].Stat == stat {
				b[i].Points = append(b[i].Points, TimelinePoint{UnixNano: t, Value: v})
				return
			}
		}
	}
	switch sn.Kind {
	case "gauge":
		put("value", sn.Value)
	case "counter":
		if prev == nil {
			return
		}
		// A series absent from the previous sample was born this interval (a
		// vec child observed for the first time): its whole cumulative state
		// is the increase, the same reading a reset gets.
		p := prev.series[key]
		dt := at.Sub(prev.at).Seconds()
		if dt <= 0 {
			return
		}
		put("rate", counterIncrease(p.Value, sn.Value)/dt)
	case "histogram":
		if prev == nil {
			return
		}
		p := prev.series[key]
		dt := at.Sub(prev.at).Seconds()
		if dt <= 0 {
			return
		}
		delta, sum, cnt := histogramDelta(&p, &sn)
		put("rate", float64(cnt)/dt)
		if cnt == 0 {
			return
		}
		put("p50", bucketQuantile(sn.Upper, delta, sum, 0.50))
		put("p99", bucketQuantile(sn.Upper, delta, sum, 0.99))
	}
}

// counterIncrease is the reset-aware increase between two cumulative counter
// readings: a decrease means the process (or counter) restarted from zero,
// so the whole new value is the increase — the same convention Prometheus's
// rate() applies.
func counterIncrease(prev, cur float64) float64 {
	if cur < prev {
		return cur
	}
	return cur - prev
}

// histogramDelta returns the per-bucket increases between two snapshots of
// one histogram, with the whole current state standing in after a reset.
func histogramDelta(prev, cur *SeriesSnapshot) (delta []uint64, sum float64, count uint64) {
	if cur.Count < prev.Count || len(prev.Buckets) != len(cur.Buckets) {
		return cur.Buckets, cur.Sum, cur.Count
	}
	delta = make([]uint64, len(cur.Buckets))
	for i := range delta {
		if cur.Buckets[i] >= prev.Buckets[i] {
			delta[i] = cur.Buckets[i] - prev.Buckets[i]
		}
	}
	return delta, cur.Sum - prev.Sum, cur.Count - prev.Count
}

// tailExemplars returns the non-nil bucket exemplars, highest bucket first —
// the order a dashboard wants: the worst outlier's trace id leads.
func tailExemplars(exs []*Exemplar) []Exemplar {
	var out []Exemplar
	for i := len(exs) - 1; i >= 0; i-- {
		if exs[i] != nil {
			out = append(out, *exs[i])
		}
	}
	return out
}

// windowEnds returns the oldest in-window and newest snapshots of one series
// key, for windowed SLO evaluation. ok is false when fewer than two
// in-window samples carry the series.
func (h *History) windowEnds(key string, window time.Duration) (first, last SeriesSnapshot, dt time.Duration, ok bool) {
	if h == nil {
		return first, last, 0, false
	}
	samples := h.samplesSince(h.now().Add(-window))
	var firstAt, lastAt time.Time
	found := 0
	for i := range samples {
		sn, has := samples[i].series[key]
		if !has {
			continue
		}
		if found == 0 {
			first, firstAt = sn, samples[i].at
		}
		last, lastAt = sn, samples[i].at
		found++
	}
	if found < 2 || !lastAt.After(firstAt) {
		return first, last, 0, false
	}
	return first, last, lastAt.Sub(firstAt), true
}

// TimelineHandler serves a History as the /timeline endpoint:
//
//	GET /timeline?window=60s&step=2s
//
// window (default 60s) bounds how far back the series reach; step (default
// 1s) thins the retained samples. Both accept Go durations ("90s", "2m") or
// bare seconds ("90"). Malformed parameters get 400.
func TimelineHandler(h *History) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		window, err := durationParam(r.URL.Query().Get("window"), time.Minute)
		if err != nil {
			http.Error(w, "bad window: "+err.Error(), http.StatusBadRequest)
			return
		}
		step, err := durationParam(r.URL.Query().Get("step"), DefaultHistoryStep)
		if err != nil {
			http.Error(w, "bad step: "+err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h.Query(window, step))
	}
}

// durationParam parses a query parameter as a Go duration or bare seconds,
// requiring a positive result; empty selects def.
func durationParam(s string, def time.Duration) (time.Duration, error) {
	if s == "" {
		return def, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		secs, err2 := strconv.ParseFloat(s, 64)
		if err2 != nil {
			return 0, err
		}
		d = time.Duration(secs * float64(time.Second))
	}
	if d <= 0 {
		return 0, strconv.ErrRange
	}
	return d, nil
}
