// Package obs is NeutronStar-Go's stdlib-only observability substrate. It
// has three parts:
//
//   - a hierarchical span tracer (this file): named, nested, attributed
//     spans per worker, exported in Chrome trace-event format so a training
//     run's epoch → layer → operator structure can be inspected in
//     chrome://tracing or Perfetto;
//   - a metric registry (registry.go): counters, gauges and fixed-bucket
//     histograms with label support, exposed in Prometheus text exposition
//     format;
//   - a debug server (server.go): an opt-in net/http server wiring
//     /metrics, /healthz, /status, /critpath, /healthwatch and
//     net/http/pprof to a running process;
//   - causal telemetry (stage.go, critpath.go): per-epoch event DAGs of
//     stage intervals and cross-worker message waits, distilled into the
//     epoch's critical path and straggler indices;
//   - an anomaly watchdog (anomaly.go): threshold rules over epoch records
//     firing structured alerts and a health report.
//
// The flat busy-interval accounting of internal/metrics is built on top of
// the tracer: each tracked interval is a span carrying a class (the
// metrics.Kind), and structural spans (class ClassNone) organise those
// intervals into a hierarchy without perturbing utilisation series.
//
// Every entry point is nil-safe: a nil *Tracer or *Span makes every method
// a no-op, so instrumentation stays in place unconditionally.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span (layer index, byte count, …).
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(key, v string) Attr { return Attr{Key: key, Value: v} }

// Int builds an int attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Value: v} }

// Int64 builds an int64 attribute.
func Int64(key string, v int64) Attr { return Attr{Key: key, Value: v} }

// Float builds a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, Value: v} }

// ClassNone marks a structural span — one that groups other spans (an epoch,
// a layer) and must not be counted as busy time by class-filtered consumers.
const ClassNone = -1

// SpanData is one finished span. Start/End are offsets from the tracer's
// first event.
type SpanData struct {
	Worker int
	// Class is a caller-defined busy-time taxonomy (internal/metrics uses
	// its Kind values); ClassNone for structural spans.
	Class int
	Name  string
	Start time.Duration
	End   time.Duration
	Attrs []Attr
}

// Duration returns the span length.
func (d SpanData) Duration() time.Duration { return d.End - d.Start }

// Attr returns the value of the named attribute, or nil.
func (d SpanData) Attr(key string) any {
	for _, a := range d.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return nil
}

// Tracer accumulates finished spans. The zero value is not usable; call
// NewTracer. A nil *Tracer is legal everywhere and records nothing. Its
// clock starts at the first event so trace timestamps are run-relative.
type Tracer struct {
	startOnce sync.Once
	start     time.Time

	mu    sync.Mutex
	spans []SpanData
	flows []FlowEvent
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Now returns the offset since the tracer's first event, starting the clock
// on first use.
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	t.startOnce.Do(func() { t.start = time.Now() })
	return time.Since(t.start)
}

// Offset converts an absolute time to this tracer's run-relative clock,
// starting the clock on first use. It lets externally anchored events (the
// flight recorder's causal offsets) be imported onto the same timeline as
// live spans.
func (t *Tracer) Offset(at time.Time) time.Duration {
	if t == nil {
		return 0
	}
	t.startOnce.Do(func() { t.start = time.Now() })
	return at.Sub(t.start)
}

// FlowEvent is one cross-worker arrow in the Chrome trace: a message that
// left FromWorker at At and was consumed on ToWorker at End. ID ties the
// start and finish halves together and must be unique per arrow (the causal
// span id is used in practice).
type FlowEvent struct {
	ID         uint64
	Name       string
	FromWorker int
	At         time.Duration
	ToWorker   int
	End        time.Duration
}

// AddFlow records one cross-worker flow arrow.
func (t *Tracer) AddFlow(f FlowEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.flows = append(t.flows, f)
	t.mu.Unlock()
}

// Flows copies all recorded flow events in insertion order.
func (t *Tracer) Flows() []FlowEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]FlowEvent, len(t.flows))
	copy(out, t.flows)
	return out
}

// Span is an open span; End finishes it. A span must be ended by the
// goroutine that started it (attrs are not synchronised before End).
type Span struct {
	tr     *Tracer
	worker int
	class  int
	name   string
	from   time.Duration
	attrs  []Attr
}

// Start opens a span on the given worker timeline. class classifies the
// span for busy-time accounting (ClassNone for structural spans).
func (t *Tracer) Start(worker, class int, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, worker: worker, class: class, name: name, from: t.Now(), attrs: attrs}
}

// Child opens a sub-span on the same worker timeline. (The Chrome trace
// format nests events by time containment within a worker row, so no
// explicit parent link is recorded.)
func (s *Span) Child(class int, name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tr.Start(s.worker, class, name, attrs...)
}

// SetAttrs appends attributes (for values only known mid-span, e.g. bytes
// received). Must be called before End, from the owning goroutine.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End closes the span and records it.
func (s *Span) End() {
	if s == nil {
		return
	}
	to := s.tr.Now()
	s.tr.mu.Lock()
	s.tr.spans = append(s.tr.spans, SpanData{
		Worker: s.worker, Class: s.class, Name: s.name,
		Start: s.from, End: to, Attrs: s.attrs,
	})
	s.tr.mu.Unlock()
}

// Add records an already-finished span verbatim. It exists for synthetic
// spans with exact offsets — deterministic tests, or importing externally
// measured intervals into a trace.
func (t *Tracer) Add(d SpanData) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, d)
	t.mu.Unlock()
}

// Snapshot copies all finished spans in completion order.
func (t *Tracer) Snapshot() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, len(t.spans))
	copy(out, t.spans)
	return out
}

// WriteChromeTrace exports every finished span in Chrome trace-event format
// (a JSON array loadable in chrome://tracing or Perfetto): one "M" metadata
// event naming each worker row via workerName, one "X" complete event per
// span with its attributes as args, and an "s"/"f" flow-event pair per
// recorded FlowEvent (rendered as a cross-worker arrow). Timestamps are
// microseconds from the tracer's first event. Output always ends with a
// newline, including for a nil tracer (which writes an empty array).
func (t *Tracer) WriteChromeTrace(w io.Writer, workerName func(worker int) string) error {
	spans := t.Snapshot()
	flows := t.Flows()
	events := make([]map[string]any, 0, len(spans)+2*len(flows)+8)

	workers := map[int]bool{}
	for _, sp := range spans {
		workers[sp.Worker] = true
	}
	for _, f := range flows {
		workers[f.FromWorker] = true
		workers[f.ToWorker] = true
	}
	ids := make([]int, 0, len(workers))
	for id := range workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		name := ""
		if workerName != nil {
			name = workerName(id)
		}
		events = append(events, map[string]any{
			"name": "thread_name", "ph": "M", "pid": 0, "tid": id,
			"args": map[string]any{"name": name},
		})
		events = append(events, map[string]any{
			"name": "thread_sort_index", "ph": "M", "pid": 0, "tid": id,
			"args": map[string]any{"sort_index": id},
		})
	}

	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	for _, sp := range spans {
		ev := map[string]any{
			"name": sp.Name, "ph": "X",
			"ts":  float64(sp.Start.Microseconds()),
			"dur": float64(sp.Duration().Microseconds()),
			"pid": 0, "tid": sp.Worker,
		}
		if len(sp.Attrs) > 0 {
			args := make(map[string]any, len(sp.Attrs))
			for _, a := range sp.Attrs {
				args[a.Key] = a.Value
			}
			ev["args"] = args
		}
		events = append(events, ev)
	}
	for _, f := range flows {
		// Clamp the start half to the timeline: a send stamped before the
		// tracer's first event would otherwise render off-screen.
		at := f.At
		if at < 0 {
			at = 0
		}
		end := f.End
		if end < at {
			end = at
		}
		events = append(events, map[string]any{
			"name": f.Name, "cat": "flow", "ph": "s", "id": f.ID,
			"ts": float64(at.Microseconds()), "pid": 0, "tid": f.FromWorker,
		})
		events = append(events, map[string]any{
			"name": f.Name, "cat": "flow", "ph": "f", "bp": "e", "id": f.ID,
			"ts": float64(end.Microseconds()), "pid": 0, "tid": f.ToWorker,
		})
	}
	return json.NewEncoder(w).Encode(events)
}
