package obs

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"
)

// histClock is a fake clock shared by a History and a Watchdog so windowed
// queries and SLO evaluation see the same deterministic time.
type histClock struct {
	mu sync.Mutex
	t  time.Time
}

func newHistClock() *histClock {
	return &histClock{t: time.Unix(1700000000, 0)}
}

func (c *histClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *histClock) advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}

// findTimeline returns the first series matching name and stat.
func findTimeline(tl *Timeline, name, stat string) *TimelineSeries {
	for i := range tl.Series {
		if tl.Series[i].Name == name && tl.Series[i].Stat == stat {
			return &tl.Series[i]
		}
	}
	return nil
}

func TestHistoryRingWraparound(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("wrap_gauge", "t")
	clock := newHistClock()
	h := NewHistory(reg, 4)
	h.now = clock.now

	for i := 1; i <= 10; i++ {
		g.Set(float64(i))
		h.Sample(clock.advance(time.Second))
	}
	if h.Len() != 4 {
		t.Fatalf("Len() = %d after 10 samples into a 4-ring", h.Len())
	}
	tl := h.Query(time.Hour, time.Second)
	s := findTimeline(tl, "wrap_gauge", "value")
	if s == nil {
		t.Fatalf("no wrap_gauge series in %+v", tl.Series)
	}
	want := []float64{7, 8, 9, 10} // oldest 6 overwritten
	if len(s.Points) != len(want) {
		t.Fatalf("got %d points, want %d: %+v", len(s.Points), len(want), s.Points)
	}
	for i, p := range s.Points {
		if p.Value != want[i] {
			t.Fatalf("point %d = %v, want %v", i, p.Value, want[i])
		}
	}
}

func TestHistoryCounterRate(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("rate_total", "t")
	clock := newHistClock()
	h := NewHistory(reg, 0)
	h.now = clock.now

	h.Sample(clock.now())
	for i := 0; i < 3; i++ {
		c.Add(5)
		h.Sample(clock.advance(time.Second))
	}
	s := findTimeline(h.Query(time.Hour, time.Second), "rate_total", "rate")
	if s == nil || len(s.Points) != 3 {
		t.Fatalf("rate series: %+v", s)
	}
	for i, p := range s.Points {
		if p.Value != 5 {
			t.Fatalf("rate point %d = %v, want 5/s", i, p.Value)
		}
	}
}

// TestHistoryCounterResetRate restarts the backing registry mid-history (the
// in-process stand-in for a process restart) and asserts the rate follows the
// Prometheus convention: a decrease reads as a restart from zero, so the new
// cumulative value is the increase — never a negative rate.
func TestHistoryCounterResetRate(t *testing.T) {
	regA := NewRegistry()
	regA.Counter("reset_total", "t").Add(100)
	clock := newHistClock()
	h := NewHistory(regA, 0)
	h.now = clock.now
	h.Sample(clock.now())

	regB := NewRegistry()
	regB.Counter("reset_total", "t").Add(3)
	h.reg = regB
	h.Sample(clock.advance(time.Second))

	s := findTimeline(h.Query(time.Hour, time.Second), "reset_total", "rate")
	if s == nil || len(s.Points) != 1 {
		t.Fatalf("rate series: %+v", s)
	}
	if got := s.Points[0].Value; got != 3 {
		t.Fatalf("post-reset rate = %v, want 3 (new cumulative value)", got)
	}
}

// TestHistorySeriesBirthMidWindow covers vec children created lazily after
// sampling has begun (a label combination first observed mid-run): the
// interval in which the series appears must yield points, reading its whole
// cumulative state as the increase.
func TestHistorySeriesBirthMidWindow(t *testing.T) {
	reg := NewRegistry()
	vec := reg.HistogramVec("birth_seconds", "t", ExpBuckets(1e-3, 10, 4), "stage")
	clock := newHistClock()
	h := NewHistory(reg, 0)
	h.now = clock.now

	h.Sample(clock.now()) // no vec child exists yet
	for i := 0; i < 50; i++ {
		vec.With("queue").Observe(0.01)
	}
	h.Sample(clock.advance(time.Second))

	tl := h.Query(time.Hour, time.Second)
	rate := findTimeline(tl, "birth_seconds", "rate")
	p50 := findTimeline(tl, "birth_seconds", "p50")
	if rate == nil || len(rate.Points) != 1 || rate.Points[0].Value != 50 {
		t.Fatalf("rate of series born mid-window: %+v", rate)
	}
	if p50 == nil || len(p50.Points) != 1 {
		t.Fatalf("p50 of series born mid-window: %+v", p50)
	}
	if v := p50.Points[0].Value; v < 0.001 || v > 0.1 {
		t.Fatalf("p50 = %v, want within the observed bucket", v)
	}
}

// TestHistoryWindowedQuantiles asserts the timeline quantiles are interval
// quantiles from bucket deltas, not cumulative-since-start: after the load
// shifts from 1ms to 1s observations, the newest p50 must reflect only the
// slow interval.
func TestHistoryWindowedQuantiles(t *testing.T) {
	reg := NewRegistry()
	hist := reg.Histogram("lat_seconds", "t", ExpBuckets(1e-4, 10, 6))
	clock := newHistClock()
	h := NewHistory(reg, 0)
	h.now = clock.now

	h.Sample(clock.now())
	for i := 0; i < 1000; i++ {
		hist.Observe(0.001)
	}
	h.Sample(clock.advance(time.Second))
	for i := 0; i < 100; i++ {
		hist.Observe(1.0)
	}
	h.Sample(clock.advance(time.Second))

	s := findTimeline(h.Query(time.Hour, time.Second), "lat_seconds", "p50")
	if s == nil || len(s.Points) != 2 {
		t.Fatalf("p50 series: %+v", s)
	}
	if fast := s.Points[0].Value; fast > 0.01 {
		t.Fatalf("fast-interval p50 = %v, want ~1ms", fast)
	}
	// 1000 fast obs dominate cumulatively; only a windowed quantile sees 1s.
	if slow := s.Points[1].Value; slow < 0.1 {
		t.Fatalf("slow-interval p50 = %v, want ~1s (cumulative leak?)", slow)
	}
}

func TestHistoryExemplarsOnP99(t *testing.T) {
	reg := NewRegistry()
	hist := reg.Histogram("ex_seconds", "t", ExpBuckets(1e-3, 10, 4))
	clock := newHistClock()
	h := NewHistory(reg, 0)
	h.now = clock.now

	h.Sample(clock.now())
	hist.ObserveWithExemplar(0.002, "00000000000000aa", clock.now())
	hist.ObserveWithExemplar(5.0, "00000000000000ff", clock.now())
	h.Sample(clock.advance(time.Second))

	tl := h.Query(time.Hour, time.Second)
	p99 := findTimeline(tl, "ex_seconds", "p99")
	if p99 == nil || len(p99.Exemplars) == 0 {
		t.Fatalf("p99 series has no exemplars: %+v", p99)
	}
	// Tail first: the worst outlier's trace id leads.
	if p99.Exemplars[0].TraceID != "00000000000000ff" {
		t.Fatalf("leading exemplar = %+v, want the 5s outlier", p99.Exemplars[0])
	}
	if rate := findTimeline(tl, "ex_seconds", "rate"); rate != nil && len(rate.Exemplars) != 0 {
		t.Fatalf("exemplars leaked onto the rate series: %+v", rate.Exemplars)
	}
}

// TestTimelineHandlerEverySeries scrapes /timeline over HTTP and asserts
// every registered metric appears as at least one series, the core /timeline
// contract.
func TestTimelineHandlerEverySeries(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tlh_total", "t").Add(2)
	reg.Gauge("tlh_gauge", "t").Set(7)
	reg.Histogram("tlh_seconds", "t", ExpBuckets(1e-3, 10, 4)).Observe(0.01)
	reg.CounterVec("tlh_labeled_total", "t", "kind").With("a").Add(1)
	clock := newHistClock()
	h := NewHistory(reg, 0)
	h.now = clock.now
	h.Sample(clock.now())
	h.Sample(clock.advance(time.Second))

	ts := httptest.NewServer(TimelineHandler(h))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "?window=60s&step=1s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var tl Timeline
	if err := json.NewDecoder(resp.Body).Decode(&tl); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range tl.Series {
		seen[s.Name] = true
	}
	for _, name := range []string{"tlh_total", "tlh_gauge", "tlh_seconds", "tlh_labeled_total"} {
		if !seen[name] {
			t.Fatalf("metric %s missing from /timeline; got %v", name, seen)
		}
	}
	if s := findTimeline(&tl, "tlh_labeled_total", "rate"); s == nil || s.Labels["kind"] != "a" {
		t.Fatalf("labeled series lost its labels: %+v", s)
	}

	for _, bad := range []string{"?window=banana", "?step=-5", "?window=0"} {
		resp, err := ts.Client().Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestHistoryConcurrentScrape exercises sampling, metric updates and
// /timeline queries concurrently; run under -race it is the data-race gate
// for the whole history path.
func TestHistoryConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("conc_total", "t")
	hist := reg.Histogram("conc_seconds", "t", ExpBuckets(1e-3, 10, 4))
	h := NewHistory(reg, 32)
	ts := httptest.NewServer(TimelineHandler(h))
	defer ts.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Inc()
			hist.ObserveWithExemplar(0.005, "0000000000000001", time.Now())
			if i%10 == 0 {
				h.Sample(time.Now())
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, err := ts.Client().Get(ts.URL + "?window=10s&step=1ms")
				if err != nil {
					t.Error(err)
					return
				}
				var tl Timeline
				if err := json.NewDecoder(resp.Body).Decode(&tl); err != nil {
					t.Error(err)
				}
				resp.Body.Close()
				h.Query(time.Second, time.Millisecond)
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestHistoryStartStop(t *testing.T) {
	h := NewHistory(NewRegistry(), 8)
	h.Start(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for h.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if h.Len() == 0 {
		t.Fatal("periodic sampler recorded nothing")
	}
	h.Stop()
	h.Stop() // idempotent

	var unstarted *History
	unstarted.Stop() // nil-safe
	if tl := unstarted.Query(time.Minute, time.Second); len(tl.Series) != 0 {
		t.Fatalf("nil history answered %d series", len(tl.Series))
	}
	h2 := NewHistory(NewRegistry(), 8)
	h2.Stop() // Stop without Start must not hang
}

// TestWatchdogSLOBurnRate drives a synthetic p99 breach through the history
// and asserts the burn-rate rule fires once per episode: fast traffic is
// quiet, a slow window alerts, a sustained breach stays latched, recovery
// re-arms.
func TestWatchdogSLOBurnRate(t *testing.T) {
	reg := NewRegistry()
	lat := reg.Histogram(serveLatencyMetric, "t", ExpBuckets(1e-5, 2.5, 16))
	clock := newHistClock()
	h := NewHistory(reg, 0)
	h.now = clock.now
	rules := WatchRules{SLOP99: 250 * time.Millisecond, SLOWindow: 30 * time.Second}
	w := NewWatchdog(rules, nil, reg)
	w.now = clock.now

	observe := func(n int, sec float64) {
		for i := 0; i < n; i++ {
			lat.Observe(sec)
		}
	}

	h.Sample(clock.now())
	observe(100, 0.001) // all under target
	h.Sample(clock.advance(5 * time.Second))
	if alerts := w.EvaluateSLO(h); len(alerts) != 0 {
		t.Fatalf("healthy window fired %+v", alerts)
	}

	observe(50, 0.5) // 50 of 150 windowed requests above 250ms: burn 33x
	h.Sample(clock.advance(5 * time.Second))
	alerts := w.EvaluateSLO(h)
	if len(alerts) != 1 || alerts[0].Rule != RuleSLOP99 {
		t.Fatalf("breach fired %+v, want one %s alert", alerts, RuleSLOP99)
	}
	if alerts[0].Value <= 1 {
		t.Fatalf("burn rate %v, want > 1", alerts[0].Value)
	}

	observe(50, 0.5) // breach persists: latched, no second alert
	h.Sample(clock.advance(5 * time.Second))
	if alerts := w.EvaluateSLO(h); len(alerts) != 0 {
		t.Fatalf("latched breach re-fired %+v", alerts)
	}

	// Recovery: advance past the slow samples so the window holds only fast
	// traffic, which re-arms the latch...
	clock.advance(time.Minute)
	h.Sample(clock.now())
	observe(100, 0.001)
	h.Sample(clock.advance(5 * time.Second))
	if alerts := w.EvaluateSLO(h); len(alerts) != 0 {
		t.Fatalf("recovered window fired %+v", alerts)
	}
	// ...and a fresh breach is a new episode with a new alert.
	observe(50, 0.5)
	h.Sample(clock.advance(5 * time.Second))
	if alerts := w.EvaluateSLO(h); len(alerts) != 1 {
		t.Fatalf("fresh breach after recovery fired %+v, want one alert", alerts)
	}
}

func TestWatchdogSLOHitRateFloor(t *testing.T) {
	reg := NewRegistry()
	hits := reg.Counter(serveCacheHitsMetric, "t")
	misses := reg.Counter(serveCacheMissesMetric, "t")
	clock := newHistClock()
	h := NewHistory(reg, 0)
	h.now = clock.now
	w := NewWatchdog(WatchRules{HitRate: 0.5, SLOWindow: 30 * time.Second}, nil, reg)
	w.now = clock.now

	h.Sample(clock.now())
	hits.Add(90)
	misses.Add(10)
	h.Sample(clock.advance(5 * time.Second))
	if alerts := w.EvaluateSLO(h); len(alerts) != 0 {
		t.Fatalf("90%% hit rate fired %+v", alerts)
	}
	misses.Add(1000) // windowed hit rate collapses
	h.Sample(clock.advance(5 * time.Second))
	alerts := w.EvaluateSLO(h)
	if len(alerts) != 1 || alerts[0].Rule != RuleSLOHitRate {
		t.Fatalf("cold cache fired %+v, want one %s alert", alerts, RuleSLOHitRate)
	}
}

// TestWatchdogSLOMinTraffic asserts the minimum-traffic gates: a tiny window
// (one unlucky request) must not alert.
func TestWatchdogSLOMinTraffic(t *testing.T) {
	reg := NewRegistry()
	lat := reg.Histogram(serveLatencyMetric, "t", ExpBuckets(1e-5, 2.5, 16))
	clock := newHistClock()
	h := NewHistory(reg, 0)
	h.now = clock.now
	w := NewWatchdog(WatchRules{SLOP99: 250 * time.Millisecond}, nil, reg)
	w.now = clock.now

	h.Sample(clock.now())
	for i := 0; i < sloMinRequests-1; i++ {
		lat.Observe(10.0) // grotesquely slow, but below the traffic gate
	}
	h.Sample(clock.advance(5 * time.Second))
	if alerts := w.EvaluateSLO(h); len(alerts) != 0 {
		t.Fatalf("under-traffic window fired %+v", alerts)
	}
}

func TestWatchRulesJSONRoundTrip(t *testing.T) {
	in := WatchRules{
		Stall: 30 * time.Second, Regress: 1.5, Straggler: 3.0, Window: 8,
		SLOP99: 250 * time.Millisecond, SLOWindow: 30 * time.Second, HitRate: 0.3,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out WatchRules
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v\nwire: %s", out, in, data)
	}
	var rep HealthReport
	if err := json.Unmarshal([]byte(`{"healthy":true,"rules":{"slo_p99_seconds":0.25}}`), &rep); err != nil {
		t.Fatalf("HealthReport decode: %v", err)
	}
	if rep.Rules.SLOP99 != 250*time.Millisecond {
		t.Fatalf("decoded SLOP99 = %v", rep.Rules.SLOP99)
	}
}

func TestParseWatchRulesSLOKeys(t *testing.T) {
	r, err := ParseWatchRules("slo_p99=250ms,hitrate=0.3,slo_window=45s")
	if err != nil {
		t.Fatal(err)
	}
	if r.SLOP99 != 250*time.Millisecond || r.HitRate != 0.3 || r.SLOWindow != 45*time.Second {
		t.Fatalf("parsed %+v", r)
	}
	for _, bad := range []string{"slo_p99=0", "hitrate=1.5", "hitrate=0", "slo_window=-1s"} {
		if _, err := ParseWatchRules(bad); err == nil {
			t.Fatalf("%q parsed without error", bad)
		}
	}
}
