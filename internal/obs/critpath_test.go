package obs

import (
	"math"
	"reflect"
	"testing"
	"time"
)

const ms = time.Millisecond

// twoWorkerDAG is the canonical hand-built epoch: worker 0 computes forward
// for 3ms and sends; worker 1 computes 2ms of forward, blocks on the message
// until 5ms, then runs backward to the 10ms wall.
func twoWorkerDAG() (time.Duration, [][]IntervalEvent, [][]MatchEvent) {
	intervals := [][]IntervalEvent{
		{{Worker: 0, Stage: StageForward, Layer: 0, Start: 0, End: 3 * ms}},
		{{Worker: 1, Stage: StageForward, Layer: 0, Start: 0, End: 2 * ms},
			{Worker: 1, Stage: StageBackward, Layer: 1, Start: 5 * ms, End: 10 * ms}},
	}
	matches := [][]MatchEvent{
		nil,
		{{Worker: 1, From: 0, Kind: "rep", Layer: 1, SpanID: 7,
			Sent: 3 * ms, WaitStart: 2 * ms, WaitEnd: 5 * ms}},
	}
	return 10 * ms, intervals, matches
}

func TestCritPathTwoWorkerChain(t *testing.T) {
	wall, intervals, matches := twoWorkerDAG()
	p := extractCritPath(wall, intervals, matches)

	if p.CoveredSeconds != p.WallSeconds {
		t.Fatalf("coverage identity broken: covered %v, wall %v", p.CoveredSeconds, p.WallSeconds)
	}
	want := []CritSpan{
		{Kind: "compute", Worker: 0, Stage: "forward", Layer: 0,
			StartSeconds: 0, EndSeconds: 0.003},
		{Kind: "net", Worker: 1, From: 0, MsgKind: "rep", Layer: 1,
			StartSeconds: 0.003, EndSeconds: 0.005},
		{Kind: "compute", Worker: 1, Stage: "backward", Layer: 1,
			StartSeconds: 0.005, EndSeconds: 0.010},
	}
	if !reflect.DeepEqual(p.Spans, want) {
		t.Fatalf("spans:\n got %+v\nwant %+v", p.Spans, want)
	}

	bd := p.Breakdown()
	for label, sec := range map[string]float64{
		"compute:forward": 0.003, "net:rep": 0.002, "compute:backward": 0.005,
	} {
		if math.Abs(bd[label]-sec) > 1e-12 {
			t.Fatalf("breakdown[%s] = %v, want %v (all: %v)", label, bd[label], sec, bd)
		}
	}
	if label, share := p.Dominant(); label != "compute:backward" || math.Abs(share-0.5) > 1e-12 {
		t.Fatalf("dominant = %s %.3f, want compute:backward 0.500", label, share)
	}
}

// TestCritPathDeterministic pins the acceptance criterion that identical
// inputs yield an identical path structure, including when the input slices
// arrive in a different (unsorted) order.
func TestCritPathDeterministic(t *testing.T) {
	wall, intervals, matches := twoWorkerDAG()
	first := extractCritPath(wall, intervals, matches)
	// Shuffle worker 1's intervals: the extractor sorts, so order must not
	// matter.
	_, intervals2, matches2 := twoWorkerDAG()
	intervals2[1][0], intervals2[1][1] = intervals2[1][1], intervals2[1][0]
	second := extractCritPath(wall, intervals2, matches2)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("extraction not deterministic:\n %+v\n vs %+v", first, second)
	}
}

// TestCritPathAttributesSlowWorker: when one worker's long compute delays a
// message everyone else waits on, the path must charge the bulk of the epoch
// to that worker — this is the attribution the straggler report relies on.
func TestCritPathAttributesSlowWorker(t *testing.T) {
	wall := 20 * ms
	intervals := [][]IntervalEvent{
		{{Worker: 0, Stage: StageForward, Start: 0, End: 1 * ms},
			{Worker: 0, Stage: StageBackward, Start: 18 * ms, End: 20 * ms}},
		{{Worker: 1, Stage: StageForward, Start: 0, End: 2 * ms},
			{Worker: 1, Stage: StageBarrier, Start: 2 * ms, End: 20 * ms}},
		{{Worker: 2, Stage: StageForward, Start: 0, End: 15 * ms}},
	}
	matches := [][]MatchEvent{
		{{Worker: 0, From: 2, Kind: "rep", Layer: 1, SpanID: 3,
			Sent: 15 * ms, WaitStart: 1 * ms, WaitEnd: 18 * ms}},
		nil, nil,
	}
	p := extractCritPath(wall, intervals, matches)
	if p.CoveredSeconds != p.WallSeconds {
		t.Fatalf("coverage identity broken: %+v", p)
	}
	ws := p.WorkerSeconds()
	if ws[2] <= ws[0] || ws[2] <= ws[1] {
		t.Fatalf("slow worker 2 not dominant on the path: %v", ws)
	}
	if math.Abs(ws[2]-0.015) > 1e-12 {
		t.Fatalf("worker 2 attributed %v, want 0.015", ws[2])
	}
	if label, _ := p.Dominant(); label != "compute:forward" {
		t.Fatalf("dominant = %s, want compute:forward (the slow worker's stage)", label)
	}
}

// TestCritPathIgnoresNonBindingWaits: a wait that found its message already
// pending (sub-eps block) is not a causal dependency and must not divert the
// walk to the sender.
func TestCritPathIgnoresNonBindingWaits(t *testing.T) {
	wall := 10 * ms
	intervals := [][]IntervalEvent{
		{{Worker: 0, Stage: StageForward, Start: 0, End: 4 * ms}},
		{{Worker: 1, Stage: StageBackward, Start: 0, End: 10 * ms}},
	}
	matches := [][]MatchEvent{
		nil,
		{{Worker: 1, From: 0, Kind: "rep", SpanID: 1,
			Sent: 2 * ms, WaitStart: 6 * ms, WaitEnd: 6*ms + 5*time.Microsecond}},
	}
	p := extractCritPath(wall, intervals, matches)
	if len(p.Spans) != 1 {
		t.Fatalf("non-binding wait diverted the walk: %+v", p.Spans)
	}
	s := p.Spans[0]
	if s.Kind != "compute" || s.Worker != 1 || s.Stage != "backward" ||
		s.StartSeconds != 0 || s.EndSeconds != 0.010 {
		t.Fatalf("span = %+v, want worker 1 backward covering the epoch", s)
	}
}

// TestCritPathBarrierNeverAnchors: barrier idling is the consequence of the
// critical chain, so a barrier interval reaching the wall must not make its
// worker the anchor.
func TestCritPathBarrierNeverAnchors(t *testing.T) {
	wall := 10 * ms
	intervals := [][]IntervalEvent{
		{{Worker: 0, Stage: StageBackward, Start: 0, End: 8 * ms}},
		{{Worker: 1, Stage: StageForward, Start: 0, End: 6 * ms},
			{Worker: 1, Stage: StageBarrier, Start: 6 * ms, End: 10 * ms}},
	}
	p := extractCritPath(wall, intervals, [][]MatchEvent{nil, nil})
	if len(p.Spans) != 1 || p.Spans[0].Worker != 0 {
		t.Fatalf("anchor fell on the barrier worker: %+v", p.Spans)
	}
	// Worker 0's recorded activity ends at 8ms; the trailing 2ms to the wall
	// extends its last stage so the identity still holds.
	if p.CoveredSeconds != p.WallSeconds || p.Spans[0].EndSeconds != 0.010 {
		t.Fatalf("trailing gap not absorbed: %+v", p)
	}
}

// TestCritPathGapsAndFallback: time before a worker's first interval is
// charged to that interval's stage; a window with no intervals at all becomes
// a single "unattributed" span. Both preserve the coverage identity.
func TestCritPathGapsAndFallback(t *testing.T) {
	wall := 10 * ms
	p := extractCritPath(wall,
		[][]IntervalEvent{{{Worker: 0, Stage: StageForward, Start: 2 * ms, End: 10 * ms}}},
		[][]MatchEvent{nil})
	if len(p.Spans) != 1 || p.Spans[0].Stage != "forward" ||
		p.Spans[0].StartSeconds != 0 || p.CoveredSeconds != p.WallSeconds {
		t.Fatalf("leading gap not charged to the following stage: %+v", p)
	}

	p = extractCritPath(wall, [][]IntervalEvent{nil}, [][]MatchEvent{nil})
	if len(p.Spans) != 1 || p.Spans[0].Stage != "unattributed" ||
		p.CoveredSeconds != p.WallSeconds {
		t.Fatalf("empty window did not fall back to unattributed: %+v", p)
	}
}

func TestCritPathDegenerateInputs(t *testing.T) {
	if p := extractCritPath(0, nil, nil); len(p.Spans) != 0 || p.CoveredSeconds != 0 {
		t.Fatalf("zero wall: %+v", p)
	}
	if p := extractCritPath(-time.Second, [][]IntervalEvent{nil}, nil); len(p.Spans) != 0 {
		t.Fatalf("negative wall: %+v", p)
	}
	var nilPath *CritPath
	if nilPath.Breakdown() != nil || nilPath.WorkerSeconds() != nil {
		t.Fatal("nil path aggregations must be nil")
	}
	if label, share := nilPath.Dominant(); label != "" || share != 0 {
		t.Fatal("nil path dominant must be empty")
	}
	if nilPath.String() != "critpath(nil)" {
		t.Fatalf("nil path String: %q", nilPath.String())
	}
}
