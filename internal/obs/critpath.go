package obs

import (
	"fmt"
	"sort"
	"time"
)

// Critical-path extraction over one epoch's event DAG.
//
// The DAG has two node kinds, both collected under causal recording:
//
//   - compute nodes: the closed StageClock intervals of each worker
//     (IntervalEvent) — at any instant each worker is in exactly one;
//   - message edges: matched cross-worker waits (MatchEvent) — worker W
//     blocked from WaitStart to WaitEnd on a message that worker F stamped
//     at Sent.
//
// The extractor walks backward from the epoch's end: starting on the worker
// whose recorded activity finished last, it attributes time to that worker's
// stage intervals until it hits a *binding* wait (one that actually blocked,
// not a match that found the message already pending), emits a net span
// [Sent, WaitEnd] for the message, and jumps to the sending worker at Sent.
// The walk telescopes — compute blocks cover [WaitEnd, t], the net span
// covers [Sent, WaitEnd], and the walk resumes at Sent — so the emitted
// spans partition the epoch exactly and CoveredSeconds equals WallSeconds
// by construction. The result is the single causal chain that bounded the
// epoch: shortening anything on it shortens the epoch; nothing off it can.

// bindingWaitEps separates waits that actually blocked the receiver from
// matches that found the message already pending (WaitEnd ≈ WaitStart).
// Sub-20µs "waits" are channel-handoff noise, not causal dependencies.
const bindingWaitEps = 20 * time.Microsecond

// critPathMaxSpans bounds the walk against pathological event logs; when the
// cap is hit the remaining time is closed out as one compute span so the
// coverage identity still holds.
const critPathMaxSpans = 512

// CritSpan is one span of an epoch's critical path. Kind is "compute" (the
// worker was executing Stage at Layer) or "net" (the worker was bound by a
// MsgKind message in flight from worker From). Times are seconds relative to
// the epoch start.
type CritSpan struct {
	Kind   string `json:"kind"`
	Worker int    `json:"worker"`
	// Stage is set on compute spans; "unattributed" marks time no stage
	// interval covered (clock not yet started, or log truncation).
	Stage string `json:"stage,omitempty"`
	Layer int    `json:"layer"`
	// From and MsgKind are meaningful only on net spans.
	From         int     `json:"from"`
	MsgKind      string  `json:"msg_kind,omitempty"`
	StartSeconds float64 `json:"start_seconds"`
	EndSeconds   float64 `json:"end_seconds"`
}

// Seconds returns the span's duration.
func (s CritSpan) Seconds() float64 { return s.EndSeconds - s.StartSeconds }

// Label returns the span's aggregation key: "compute:<stage>" or
// "net:<msg kind>".
func (s CritSpan) Label() string {
	if s.Kind == "net" {
		return "net:" + s.MsgKind
	}
	return "compute:" + s.Stage
}

// CritPath is the extracted critical path of one epoch: a chronological
// chain of spans that partitions [0, WallSeconds]. CoveredSeconds is the sum
// of span durations and equals WallSeconds up to clock-read jitter.
type CritPath struct {
	WallSeconds    float64    `json:"wall_seconds"`
	CoveredSeconds float64    `json:"covered_seconds"`
	Spans          []CritSpan `json:"spans"`
}

// Breakdown aggregates span seconds by Label — the input for "why was this
// epoch slow" reporting and for watchdog/bench gating.
func (p *CritPath) Breakdown() map[string]float64 {
	if p == nil {
		return nil
	}
	out := make(map[string]float64)
	for _, s := range p.Spans {
		out[s.Label()] += s.Seconds()
	}
	return out
}

// Dominant returns the Label with the most attributed seconds, with its
// share of the covered time. Empty when the path has no spans.
func (p *CritPath) Dominant() (label string, share float64) {
	if p == nil || p.CoveredSeconds <= 0 {
		return "", 0
	}
	var best float64
	for l, s := range p.Breakdown() {
		if s > best || (s == best && (label == "" || l < label)) {
			best, label = s, l
		}
	}
	return label, best / p.CoveredSeconds
}

// WorkerSeconds aggregates span seconds by the worker the time is attributed
// to (net spans charge the receiver, whose progress the message bounded).
func (p *CritPath) WorkerSeconds() map[int]float64 {
	if p == nil {
		return nil
	}
	out := make(map[int]float64)
	for _, s := range p.Spans {
		out[s.Worker] += s.Seconds()
	}
	return out
}

// String renders a compact one-line summary for logs.
func (p *CritPath) String() string {
	if p == nil {
		return "critpath(nil)"
	}
	label, share := p.Dominant()
	return fmt.Sprintf("critpath(%d spans, %.3fs/%.3fs, dominant %s %.0f%%)",
		len(p.Spans), p.CoveredSeconds, p.WallSeconds, label, share*100)
}

// extractCritPath walks the epoch's event DAG backward from wall and returns
// the critical path. intervals and matches are indexed by worker; both are
// treated read-only. Deterministic for identical inputs: ties are broken by
// fixed ordering, never map iteration.
func extractCritPath(wall time.Duration, intervals [][]IntervalEvent, matches [][]MatchEvent) *CritPath {
	p := &CritPath{WallSeconds: wall.Seconds()}
	if wall <= 0 || len(intervals) == 0 {
		return p
	}
	for w := range intervals {
		sort.Slice(intervals[w], func(i, j int) bool {
			a, b := intervals[w][i], intervals[w][j]
			if a.Start != b.Start {
				return a.Start < b.Start
			}
			return a.End < b.End
		})
	}
	for w := range matches {
		sort.Slice(matches[w], func(i, j int) bool {
			a, b := matches[w][i], matches[w][j]
			if a.WaitEnd != b.WaitEnd {
				return a.WaitEnd < b.WaitEnd
			}
			return a.SpanID < b.SpanID
		})
	}

	// Anchor on the worker whose recorded activity ended last: the epoch
	// barrier released when it finished, so the causal chain ends there.
	worker, latest := 0, time.Duration(-1)
	for w := range intervals {
		for _, iv := range intervals[w] {
			// Barrier intervals are the *consequence* of the critical chain
			// (everyone else idling), never its tail.
			if iv.Stage == StageBarrier {
				continue
			}
			if iv.End > latest {
				latest, worker = iv.End, w
			}
		}
	}

	var rev []CritSpan // built backward, reversed before return
	t := wall
	for t > 0 {
		var m *MatchEvent
		if worker < len(matches) {
			ms := matches[worker]
			for i := len(ms) - 1; i >= 0; i-- {
				c := &ms[i]
				if c.WaitEnd > t {
					continue
				}
				if c.WaitEnd-c.WaitStart <= bindingWaitEps {
					continue // found pending: not a binding dependency
				}
				if c.Sent >= t || c.From < 0 || c.From >= len(intervals) {
					continue
				}
				m = c
				break
			}
		}
		boundary := time.Duration(0)
		if m != nil {
			boundary = m.WaitEnd
		}
		if len(rev) >= critPathMaxSpans {
			m, boundary = nil, 0 // close out the remainder in one block
		}
		rev = appendComputeBlockRev(rev, intervals[worker], worker, boundary, t)
		if m == nil {
			break
		}
		sent := m.Sent
		if sent < 0 {
			sent = 0
		}
		// Sent derives from wall-clock arithmetic (UnixNano deltas) while the
		// wait bounds are monotonic reads; a few microseconds of cross-clock
		// skew can put the stamp after the wait ended. Clamp rather than emit
		// an inverted span.
		if sent > m.WaitEnd {
			sent = m.WaitEnd
		}
		rev = append(rev, CritSpan{
			Kind: "net", Worker: m.Worker, From: m.From,
			MsgKind: m.Kind, Layer: m.Layer,
			StartSeconds: sent.Seconds(), EndSeconds: m.WaitEnd.Seconds(),
		})
		if sent >= t {
			break // no progress; defensive against inconsistent stamps
		}
		worker, t = m.From, sent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	p.Spans = rev
	for _, s := range p.Spans {
		p.CoveredSeconds += s.Seconds()
	}
	return p
}

// appendComputeBlockRev emits the compute spans of worker over [boundary, t]
// in reverse-chronological order. The block exactly covers the window: each
// span starts where the previous one ended, so gaps before a recorded
// interval are charged to that interval's stage and a trailing gap extends
// the final span to t. Only a window with no overlapping intervals at all
// yields an "unattributed" span.
func appendComputeBlockRev(rev []CritSpan, ivs []IntervalEvent, worker int, boundary, t time.Duration) []CritSpan {
	if t <= boundary {
		return rev
	}
	// Segments chronological first, then appended reversed.
	var segs []CritSpan
	cursor := boundary
	for _, iv := range ivs {
		if iv.End <= boundary || iv.Start >= t {
			continue
		}
		end := iv.End
		if end > t {
			end = t
		}
		if end <= cursor {
			continue
		}
		segs = append(segs, CritSpan{
			Kind: "compute", Worker: worker,
			Stage: iv.Stage.String(), Layer: iv.Layer,
			StartSeconds: cursor.Seconds(), EndSeconds: end.Seconds(),
		})
		cursor = end
	}
	if cursor < t {
		if n := len(segs); n > 0 {
			segs[n-1].EndSeconds = t.Seconds()
		} else {
			segs = append(segs, CritSpan{
				Kind: "compute", Worker: worker, Stage: "unattributed",
				StartSeconds: boundary.Seconds(), EndSeconds: t.Seconds(),
			})
		}
	}
	for i := len(segs) - 1; i >= 0; i-- {
		rev = append(rev, segs[i])
	}
	return rev
}
