package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The metric registry: counters, gauges and fixed-bucket histograms with
// label support, exposed in Prometheus text exposition format (hand-rolled,
// stdlib only). Naming convention: ns_<subsystem>_<name>_<unit>, with
// counters suffixed _total.
//
// Registration is idempotent by family name so independent subsystems (or
// several engines in one process) can declare the same metric and share it;
// a redeclaration with a different type, help string or label set panics,
// since that is a programming error, not a runtime condition.

// metricKind discriminates the three collector families.
type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// atomicFloat is a float64 with atomic add/set via CAS on the bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Set(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value. All methods are safe for
// concurrent use; a nil *Counter is a no-op.
type Counter struct {
	v atomicFloat
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored (counters are
// monotone by contract).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	c.v.Add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. A nil *Gauge is a no-op.
type Gauge struct {
	v atomicFloat
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Set(v)
}

// Add increments by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.v.Add(v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Exemplar ties one concrete observation to the trace that produced it: a
// latency bucket alone says "something landed here", the exemplar says which
// request, so a p99 spike links to an inspectable trace. TraceID is an opaque
// caller-chosen id string (serving uses the request trace id in hex).
type Exemplar struct {
	Value    float64 `json:"value"`
	TraceID  string  `json:"trace_id"`
	UnixNano int64   `json:"unix_nano"`
}

// Histogram counts observations into fixed buckets. upper holds the
// ascending finite bucket bounds; the +Inf bucket is implicit. A nil
// *Histogram is a no-op.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // len(upper)+1; last is the +Inf bucket
	sum    atomicFloat
	n      atomic.Uint64
	// exemplars holds the most recent traced observation per bucket (nil
	// entry = no traced observation landed there yet). Same length as counts.
	exemplars []atomic.Pointer[Exemplar]
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Prometheus buckets are inclusive upper bounds: v goes to the first
	// bucket with upper >= v.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// ObserveWithExemplar records one sample and remembers (value, traceID, now)
// as the bucket's exemplar, replacing any previous one — each bucket keeps
// its most recent traced observation, so the tail buckets always point at a
// fresh outlier trace.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string, at time.Time) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID, UnixNano: at.UnixNano()})
	}
}

// Exemplars returns the per-bucket exemplars (len(buckets)+1 entries, +Inf
// last); nil entries mean no traced observation landed in that bucket.
func (h *Histogram) Exemplars() []*Exemplar {
	if h == nil {
		return nil
	}
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// bucketCounts loads the per-bucket (non-cumulative) counts.
func (h *Histogram) bucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the p-quantile (p clamped to [0, 1]) by linear
// interpolation inside the bucket containing the target rank — the same
// estimator Prometheus's histogram_quantile uses, so dashboards and the
// end-of-run report agree. The lower bound of the first bucket is 0; a rank
// landing in the +Inf bucket reports the largest finite bound (the value is
// known only to exceed it). Returns 0 for an empty histogram. Under
// concurrent Observe the estimate is approximate, like any monitoring read.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil || h.n.Load() == 0 {
		return 0
	}
	return bucketQuantile(h.upper, h.bucketCounts(), h.Sum(), p)
}

// bucketQuantile is the interpolating estimator behind Histogram.Quantile,
// shared with the metric history's windowed (delta-count) quantiles. counts
// are per-bucket (non-cumulative), len(upper)+1 with +Inf last; sum is only
// consulted for the degenerate no-finite-buckets case, where the mean is the
// only estimate available. Returns 0 when counts are all zero.
func bucketQuantile(upper []float64, counts []uint64, sum, p float64) float64 {
	var n uint64
	for _, c := range counts {
		n += c
	}
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(n)
	var cum float64
	for i, cn := range counts {
		c := float64(cn)
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			if i == len(upper) {
				// +Inf bucket: no finite upper bound to interpolate toward.
				if len(upper) == 0 {
					return sum / float64(n)
				}
				return upper[len(upper)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = upper[i-1]
			}
			return lower + (upper[i]-lower)*((rank-cum)/c)
		}
		cum += c
	}
	if len(upper) == 0 {
		return sum / float64(n)
	}
	return upper[len(upper)-1]
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start, each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n evenly spaced bucket bounds starting at start.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// TimeBuckets spans 1µs to ~16.8s in powers of four — wide enough for both
// a single gather kernel and a full epoch.
var TimeBuckets = ExpBuckets(1e-6, 4, 12)

// SizeBuckets spans 64 B to ~1 GB in powers of four, for message and block
// sizes.
var SizeBuckets = ExpBuckets(64, 4, 12)

// series is one labeled instance within a family.
type series struct {
	labelValues []string
	c           *Counter
	g           *Gauge
	h           *Histogram
}

// family is every series sharing one metric name.
type family struct {
	name       string
	help       string
	kind       metricKind
	labelNames []string
	buckets    []float64

	mu     sync.Mutex
	series map[string]*series
}

func (f *family) get(values []string) *series {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case counterKind:
		s.c = &Counter{}
	case gaugeKind:
		s.g = &Gauge{}
	case histogramKind:
		s.h = &Histogram{
			upper:     f.buckets,
			counts:    make([]atomic.Uint64, len(f.buckets)+1),
			exemplars: make([]atomic.Pointer[Exemplar], len(f.buckets)+1),
		}
	}
	f.series[key] = s
	return s
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. The zero value is not usable; call NewRegistry or use
// Default.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that package-level
// instrumentation (engine, comm, tensor) registers into and the debug
// server serves by default.
func Default() *Registry { return defaultRegistry }

func (r *Registry) family(name, help string, kind metricKind, labelNames []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labelNames, labelNames) {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s%v, was %s%v",
				name, kind, labelNames, f.kind, f.labelNames))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labelNames: append([]string(nil), labelNames...),
		buckets:    append([]float64(nil), buckets...),
		series:     make(map[string]*series),
	}
	sort.Float64s(f.buckets)
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter returns the unlabeled counter with the given name, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, counterKind, nil, nil).get(nil).c
}

// CounterVec declares a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, counterKind, labelNames, nil)}
}

// Gauge returns the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, gaugeKind, nil, nil).get(nil).g
}

// GaugeVec declares a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, gaugeKind, labelNames, nil)}
}

// Histogram returns the unlabeled histogram with the given name and bucket
// bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.family(name, help, histogramKind, nil, buckets).get(nil).h
}

// HistogramVec declares a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, histogramKind, labelNames, buckets)}
}

// CounterVec resolves label values to counters.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on first use).
func (v *CounterVec) With(labelValues ...string) *Counter { return v.f.get(labelValues).c }

// GaugeVec resolves label values to gauges.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge { return v.f.get(labelValues).g }

// HistogramVec resolves label values to histograms.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram { return v.f.get(labelValues).h }

// WritePrometheus renders every family in text exposition format (version
// 0.0.4): families sorted by name, series sorted by label values, histograms
// expanded into cumulative _bucket/_sum/_count series with a trailing +Inf
// bucket.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*family, len(r.families))
	for name, f := range r.families {
		names = append(names, name)
		fams[name] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := fams[name]
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, k := range keys {
			s := f.series[k]
			switch f.kind {
			case counterKind:
				writeSample(&b, f.name, f.labelNames, s.labelValues, "", "", s.c.Value())
			case gaugeKind:
				writeSample(&b, f.name, f.labelNames, s.labelValues, "", "", s.g.Value())
			case histogramKind:
				var cum uint64
				for i, upper := range s.h.upper {
					cum += s.h.counts[i].Load()
					writeSample(&b, f.name+"_bucket", f.labelNames, s.labelValues,
						"le", formatFloat(upper), float64(cum))
				}
				cum += s.h.counts[len(s.h.upper)].Load()
				writeSample(&b, f.name+"_bucket", f.labelNames, s.labelValues,
					"le", "+Inf", float64(cum))
				writeSample(&b, f.name+"_sum", f.labelNames, s.labelValues, "", "", s.h.Sum())
				writeSample(&b, f.name+"_count", f.labelNames, s.labelValues, "", "", float64(s.h.Count()))
			}
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample renders one series line; extraName/extraValue append one more
// label (histograms' le), placed last.
func writeSample(b *strings.Builder, name string, labelNames, labelValues []string, extraName, extraValue string, v float64) {
	b.WriteString(name)
	if len(labelNames) > 0 || extraName != "" {
		b.WriteByte('{')
		first := true
		for i, ln := range labelNames {
			if !first {
				b.WriteByte(',')
			}
			first = false
			// %q escapes backslashes, quotes and newlines exactly as the
			// exposition format requires.
			fmt.Fprintf(b, "%s=%q", ln, labelValues[i])
		}
		if extraName != "" {
			if !first {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s=%q", extraName, extraValue)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
