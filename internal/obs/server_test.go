package obs

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ns_srv_hits_total", "hits").Add(42)
	reg.Histogram("ns_srv_seconds", "latency", TimeBuckets).Observe(0.01)
	status := func() any {
		return map[string]any{"epoch": 7, "loss": 0.5}
	}
	epochs := func() any {
		return map[string]any{"records": []int{1, 2, 3}}
	}
	srv, err := NewServer("127.0.0.1:0", reg, Endpoints{Status: status, Epochs: epochs})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("healthz: %d %q", code, body)
	}
	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		"ns_srv_hits_total 42",
		`ns_srv_seconds_bucket{le="+Inf"} 1`,
		"ns_srv_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	code, body = get(t, base+"/status")
	if code != 200 || !strings.Contains(body, `"epoch": 7`) {
		t.Fatalf("status: %d %q", code, body)
	}
	code, body = get(t, base+"/epochs")
	if code != 200 || !strings.Contains(body, `"records"`) {
		t.Fatalf("epochs: %d %q", code, body)
	}
	code, body = get(t, base+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: %d", code)
	}
	if code, _ := get(t, base+"/debug/pprof/goroutine?debug=1"); code != 200 {
		t.Fatalf("pprof goroutine: %d", code)
	}
}

func TestDebugServerNilStatusAndRegistry(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil, Endpoints{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if code, body := get(t, base+"/status"); code != 200 || strings.TrimSpace(body) != "{}" {
		t.Fatalf("status: %d %q", code, body)
	}
	if code, body := get(t, base+"/epochs"); code != 200 || strings.TrimSpace(body) != "{}" {
		t.Fatalf("epochs: %d %q", code, body)
	}
	if code, body := get(t, base+"/critpath"); code != 200 || strings.TrimSpace(body) != "{}" {
		t.Fatalf("critpath: %d %q", code, body)
	}
	if code, body := get(t, base+"/healthwatch"); code != 200 || strings.TrimSpace(body) != "{}" {
		t.Fatalf("healthwatch: %d %q", code, body)
	}
	// nil registry falls back to Default().
	if code, _ := get(t, base+"/metrics"); code != 200 {
		t.Fatalf("metrics: %d", code)
	}
}

// TestDebugServerConcurrentScrape races /critpath, /healthwatch and /metrics
// scrapes against a flight recorder that is actively recording causal epochs
// and a watchdog observing them — the exact shape of a dashboard polling a
// live training run. Run under -race this is the data-race gate for the
// whole causal path: the endpoints read the same structures the epoch loop
// writes.
func TestDebugServerConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	rec := NewFlightRecorder()
	rec.EnableCausal()
	watch := NewWatchdog(WatchRules{Regress: 1000, Straggler: 1000}, nil, reg)
	srv, err := NewServer("127.0.0.1:0", reg, Endpoints{
		Epochs:      func() any { return rec.Snapshot() },
		CritPath:    func() any { return rec.Snapshot() },
		HealthWatch: func() any { return watch.Health() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	done := make(chan struct{})
	go func() {
		defer close(done)
		const workers = 3
		for epoch := 1; epoch <= 30; epoch++ {
			rec.BeginEpoch(epoch, workers, 2)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					sc := rec.Clock(w)
					sc.Switch(StageBackward, 1)
					if w != 0 {
						rec.OnWaitMatch(w, 0, "rep", 1, 0, uint64(epoch*10+w),
							time.Now().UnixNano(), time.Now(), time.Now().Add(time.Millisecond))
					}
					sc.End()
				}(w)
			}
			wg.Wait()
			rec.EndEpoch(time.Millisecond, 0.5)
			if last, ok := rec.Last(); ok {
				watch.ObserveEpoch(last)
			}
		}
	}()

	var wg sync.WaitGroup
	for _, path := range []string{"/critpath", "/healthwatch", "/metrics", "/epochs"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				// t.Fatal is off-limits in a non-test goroutine, so the scrape
				// loop reports through t.Errorf and bails.
				resp, err := http.Get(base + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("%s: status %d", path, resp.StatusCode)
					return
				}
			}
		}(path)
	}
	wg.Wait()
	<-done
	if rep := watch.Health(); rep.LastEpoch != 30 {
		t.Fatalf("watchdog saw epoch %d, want 30", rep.LastEpoch)
	}
}
