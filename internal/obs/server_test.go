package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ns_srv_hits_total", "hits").Add(42)
	reg.Histogram("ns_srv_seconds", "latency", TimeBuckets).Observe(0.01)
	status := func() any {
		return map[string]any{"epoch": 7, "loss": 0.5}
	}
	epochs := func() any {
		return map[string]any{"records": []int{1, 2, 3}}
	}
	srv, err := NewServer("127.0.0.1:0", reg, status, epochs)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("healthz: %d %q", code, body)
	}
	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		"ns_srv_hits_total 42",
		`ns_srv_seconds_bucket{le="+Inf"} 1`,
		"ns_srv_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	code, body = get(t, base+"/status")
	if code != 200 || !strings.Contains(body, `"epoch": 7`) {
		t.Fatalf("status: %d %q", code, body)
	}
	code, body = get(t, base+"/epochs")
	if code != 200 || !strings.Contains(body, `"records"`) {
		t.Fatalf("epochs: %d %q", code, body)
	}
	code, body = get(t, base+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: %d", code)
	}
	if code, _ := get(t, base+"/debug/pprof/goroutine?debug=1"); code != 200 {
		t.Fatalf("pprof goroutine: %d", code)
	}
}

func TestDebugServerNilStatusAndRegistry(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if code, body := get(t, base+"/status"); code != 200 || strings.TrimSpace(body) != "{}" {
		t.Fatalf("status: %d %q", code, body)
	}
	if code, body := get(t, base+"/epochs"); code != 200 || strings.TrimSpace(body) != "{}" {
		t.Fatalf("epochs: %d %q", code, body)
	}
	// nil registry falls back to Default().
	if code, _ := get(t, base+"/metrics"); code != 200 {
		t.Fatalf("metrics: %d", code)
	}
}
