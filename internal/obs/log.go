package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

// Severities, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel maps a name to a Level; unknown names default to info.
func ParseLevel(s string) Level {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// Logger is a leveled structured logger emitting key=value text lines or
// JSON objects. Loggers derived via With/WithJSON share the writer, its
// mutex and the level, so SetLevel on any of them affects all. A nil
// *Logger discards everything.
type Logger struct {
	out   *logOutput
	level *atomic.Int32
	json  bool
	base  []logField
	now   func() time.Time
}

type logOutput struct {
	mu sync.Mutex
	w  io.Writer
}

type logField struct {
	key string
	val any
}

// NewLogger returns a text-format logger at LevelInfo writing to w.
func NewLogger(w io.Writer) *Logger {
	lv := &atomic.Int32{}
	lv.Store(int32(LevelInfo))
	return &Logger{out: &logOutput{w: w}, level: lv, now: time.Now}
}

// SetLevel changes the minimum emitted level (shared with derived loggers).
func (l *Logger) SetLevel(lv Level) {
	if l == nil {
		return
	}
	l.level.Store(int32(lv))
}

// WithJSON returns a copy emitting JSON objects instead of key=value text.
func (l *Logger) WithJSON(on bool) *Logger {
	if l == nil {
		return nil
	}
	c := *l
	c.json = on
	return &c
}

// With returns a child logger whose lines always carry the given
// alternating key/value pairs.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	c := *l
	c.base = append(append([]logField(nil), l.base...), pairs(kv)...)
	return &c
}

// pairs folds an alternating key/value list into fields; a trailing key
// without a value gets the explicit marker value "(MISSING)".
func pairs(kv []any) []logField {
	out := make([]logField, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		var val any = "(MISSING)"
		if i+1 < len(kv) {
			val = kv[i+1]
		}
		out = append(out, logField{key: key, val: val})
	}
	return out
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if l == nil || lv < Level(l.level.Load()) {
		return
	}
	fields := append(append([]logField(nil), l.base...), pairs(kv)...)
	ts := l.now().UTC().Format("2006-01-02T15:04:05.000Z07:00")
	var line []byte
	if l.json {
		line = renderJSON(ts, lv, msg, fields)
	} else {
		line = renderText(ts, lv, msg, fields)
	}
	l.out.mu.Lock()
	_, _ = l.out.w.Write(line)
	l.out.mu.Unlock()
}

func renderText(ts string, lv Level, msg string, fields []logField) []byte {
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(ts)
	b.WriteString(" level=")
	b.WriteString(lv.String())
	b.WriteString(" msg=")
	b.WriteString(textValue(msg))
	for _, f := range fields {
		b.WriteByte(' ')
		b.WriteString(f.key)
		b.WriteByte('=')
		b.WriteString(textValue(fmtValue(f.val)))
	}
	b.WriteByte('\n')
	return []byte(b.String())
}

// fmtValue renders a field value compactly: floats trim trailing zeros,
// everything else goes through fmt.
func fmtValue(v any) string {
	switch x := v.(type) {
	case float64:
		return strconv.FormatFloat(x, 'g', 6, 64)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', 6, 32)
	case error:
		return x.Error()
	default:
		return fmt.Sprint(v)
	}
}

// textValue quotes a value when it contains characters that would break
// key=value parsing.
func textValue(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}

func renderJSON(ts string, lv Level, msg string, fields []logField) []byte {
	var b strings.Builder
	b.WriteString(`{"ts":`)
	writeJSONValue(&b, ts)
	b.WriteString(`,"level":`)
	writeJSONValue(&b, lv.String())
	b.WriteString(`,"msg":`)
	writeJSONValue(&b, msg)
	for _, f := range fields {
		b.WriteByte(',')
		writeJSONValue(&b, f.key)
		b.WriteByte(':')
		writeJSONValue(&b, f.val)
	}
	b.WriteString("}\n")
	return []byte(b.String())
}

func writeJSONValue(b *strings.Builder, v any) {
	if err, ok := v.(error); ok {
		v = err.Error()
	}
	data, err := json.Marshal(v)
	if err != nil {
		data, _ = json.Marshal(fmt.Sprint(v))
	}
	b.Write(data)
}
