package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(0, ClassNone, "root")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	sp.SetAttrs(Int("x", 1))
	sp.Child(0, "child").End()
	sp.End()
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer recorded %d spans", len(got))
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "[]\n" {
		t.Fatalf("nil trace = %q, want %q", buf.String(), "[]\n")
	}
}

func TestSpanNestingAndAttrs(t *testing.T) {
	tr := NewTracer()
	epoch := tr.Start(1, ClassNone, "epoch", Int("epoch", 3), String("mode", "hybrid"))
	layer := epoch.Child(ClassNone, "layer[1]", Int("layer", 1))
	op := layer.Child(0, "gather_dep_nbr")
	op.SetAttrs(Int64("bytes", 4096))
	op.End()
	layer.End()
	epoch.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("spans = %d", len(spans))
	}
	// Completion order: innermost first.
	if spans[0].Name != "gather_dep_nbr" || spans[2].Name != "epoch" {
		t.Fatalf("order wrong: %v %v %v", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	if spans[0].Attr("bytes") != int64(4096) {
		t.Fatalf("bytes attr = %v", spans[0].Attr("bytes"))
	}
	if spans[2].Attr("mode") != "hybrid" || spans[2].Attr("epoch") != 3 {
		t.Fatalf("epoch attrs = %v", spans[2].Attrs)
	}
	if spans[2].Attr("missing") != nil {
		t.Fatal("missing attr should be nil")
	}
	// Time containment: child within parent.
	if spans[0].Start < spans[2].Start || spans[0].End > spans[2].End {
		t.Fatal("child span not contained in parent")
	}
	for _, sp := range spans {
		if sp.Worker != 1 {
			t.Fatalf("worker = %d", sp.Worker)
		}
	}
	if spans[1].Class != ClassNone || spans[0].Class != 0 {
		t.Fatalf("classes: %d %d", spans[1].Class, spans[0].Class)
	}
}

func TestTracerAddSynthetic(t *testing.T) {
	tr := NewTracer()
	tr.Add(SpanData{Worker: 2, Class: 1, Name: "x", Start: 10 * time.Millisecond, End: 30 * time.Millisecond})
	spans := tr.Snapshot()
	if len(spans) != 1 || spans[0].Duration() != 20*time.Millisecond {
		t.Fatalf("synthetic span %+v", spans)
	}
}

func TestWriteChromeTraceMetadataAndEvents(t *testing.T) {
	tr := NewTracer()
	tr.Add(SpanData{Worker: 1, Class: 0, Name: "compute", Start: 0, End: 2 * time.Millisecond,
		Attrs: []Attr{Int("layer", 2)}})
	tr.Add(SpanData{Worker: 0, Class: ClassNone, Name: "epoch", Start: 0, End: 5 * time.Millisecond})

	var buf bytes.Buffer
	err := tr.WriteChromeTrace(&buf, func(w int) string { return "worker " + string(rune('0'+w)) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Fatal("trace output must end with a newline")
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 2 workers × (thread_name + thread_sort_index) + 2 spans.
	if len(events) != 6 {
		t.Fatalf("events = %d", len(events))
	}
	names := map[float64]string{}
	for _, ev := range events {
		if ev["ph"] == "M" && ev["name"] == "thread_name" {
			names[ev["tid"].(float64)] = ev["args"].(map[string]any)["name"].(string)
		}
	}
	if names[0] != "worker 0" || names[1] != "worker 1" {
		t.Fatalf("thread names = %v", names)
	}
	var sawCompute bool
	for _, ev := range events {
		if ev["ph"] == "X" && ev["name"] == "compute" {
			sawCompute = true
			if ev["dur"].(float64) != 2000 {
				t.Fatalf("dur = %v", ev["dur"])
			}
			if ev["args"].(map[string]any)["layer"].(float64) != 2 {
				t.Fatalf("args = %v", ev["args"])
			}
		}
	}
	if !sawCompute {
		t.Fatal("compute event missing")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.Start(w, 0, "op")
				sp.SetAttrs(Int("i", i))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if n := len(tr.Snapshot()); n != 800 {
		t.Fatalf("spans = %d", n)
	}
}
