package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// The epoch flight recorder attributes every nanosecond of an epoch's wall
// time, and every byte that crosses the fabric, to a fixed stage taxonomy —
// per worker, per layer, per epoch. It is the measurement substrate for the
// paper's §6 evaluation style breakdowns (computation vs. communication time
// and traffic volume) and for the cost-model validator: Eq. 1–3 predict
// seconds per stage, and the recorder supplies the measured counterpart.
//
// Design constraints, in order:
//
//  1. Correctness of the accounting identity. Per worker, the stage times of
//     one epoch partition the worker's wall time with no gaps: StageClock is
//     an exclusive state machine that attributes elapsed-since-last-switch to
//     the stage being left, so the per-worker sum equals the worker's span
//     by construction, not by hoping every interval was wrapped.
//  2. Low overhead. One clock per worker goroutine (no locks, no maps on the
//     hot path — a Switch is one monotonic clock read and one atomic add);
//     byte attribution is one atomic add per message.
//  3. Nil safety. A nil *FlightRecorder and a nil *StageClock are no-ops, so
//     instrumented paths cost nothing when recording is off — matching the
//     Tracer/Span convention of this package.

// Stage is one slot of the fixed attribution taxonomy.
type Stage uint8

// The stage taxonomy. Time and traffic cells are indexed (worker, stage,
// layer); stages without a meaningful layer use layer cell 0.
const (
	// StageForward is forward-pass compute (vertex/edge kernels, tape
	// bookkeeping, pre-transforms).
	StageForward Stage = iota
	// StageBackward is backward-pass compute (tape backward, loss, seed
	// assembly, gradient collection).
	StageBackward
	// StageDepFetchSend is time spent packing/sending master rows and waiting
	// for sends to drain (GetFromDepNbr, sender side).
	StageDepFetchSend
	// StageDepFetchRecv is time blocked on arriving dependency rows and
	// unpacking them (GetFromDepNbr, receiver side).
	StageDepFetchRecv
	// StageMirrorScatter covers mirror-gradient exchange in the backward pass
	// (PostToDepNbr), both posting and waiting.
	StageMirrorScatter
	// StageGradSync is parameter-gradient synchronisation: ring all-reduce or
	// parameter-server exchange, plus clipping and the optimiser step.
	StageGradSync
	// StageBarrier is the per-worker idle tail between a worker's own finish
	// and the slowest worker's finish — the epoch-synchronous straggler cost.
	StageBarrier
	// StageCheckpoint is snapshot serialisation at the epoch barrier. It is
	// recorded outside the epoch wall time (EpochStats.Duration excludes the
	// save), so it is excluded from the wall-coverage identity.
	StageCheckpoint
	// NumStages bounds the taxonomy.
	NumStages
)

var stageNames = [NumStages]string{
	"forward", "backward", "dep_fetch_send", "dep_fetch_recv",
	"mirror_scatter", "grad_sync", "barrier", "checkpoint",
}

// String returns the stage's stable snake_case name, used in JSON documents
// and the BENCH schema. These names are part of the BENCH.json contract.
func (s Stage) String() string {
	if s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// StageNames returns the taxonomy in stage order.
func StageNames() []string {
	out := make([]string, NumStages)
	copy(out, stageNames[:])
	return out
}

// stageCell is one (worker, stage, layer) accumulator.
type stageCell struct {
	nanos atomic.Int64
	bytes atomic.Int64
	msgs  atomic.Int64
}

// epochAccum is the live accumulator of one open epoch.
type epochAccum struct {
	epoch   int
	workers int
	layers  int
	cells   []stageCell // workers × NumStages × (layers+1)
}

func (a *epochAccum) cell(worker int, s Stage, layer int) *stageCell {
	if worker < 0 || worker >= a.workers || s >= NumStages {
		return nil
	}
	if layer < 0 {
		layer = 0
	}
	if layer > a.layers {
		layer = a.layers
	}
	return &a.cells[(worker*int(NumStages)+int(s))*(a.layers+1)+layer]
}

// StageCell is one non-empty attribution cell of a finished epoch.
type StageCell struct {
	Worker  int     `json:"worker"`
	Stage   string  `json:"stage"`
	Layer   int     `json:"layer"`
	Seconds float64 `json:"seconds"`
	Bytes   int64   `json:"bytes,omitempty"`
	Msgs    int64   `json:"msgs,omitempty"`
}

// EpochRecord is the immutable flight record of one completed epoch. Cells
// holds only non-empty (worker, stage, layer) slots.
type EpochRecord struct {
	Epoch       int         `json:"epoch"`
	WallSeconds float64     `json:"wall_seconds"`
	Loss        float64     `json:"loss"`
	Workers     int         `json:"workers"`
	Layers      int         `json:"layers"`
	Cells       []StageCell `json:"cells"`
}

// StageSeconds sums the stage's time across all workers and layers.
func (r *EpochRecord) StageSeconds(stage string) float64 {
	var s float64
	for _, c := range r.Cells {
		if c.Stage == stage {
			s += c.Seconds
		}
	}
	return s
}

// LayerStageSeconds sums the stage's time at one layer across workers.
func (r *EpochRecord) LayerStageSeconds(stage string, layer int) float64 {
	var s float64
	for _, c := range r.Cells {
		if c.Stage == stage && c.Layer == layer {
			s += c.Seconds
		}
	}
	return s
}

// StageBytes sums the stage's traffic across all workers and layers.
func (r *EpochRecord) StageBytes(stage string) int64 {
	var b int64
	for _, c := range r.Cells {
		if c.Stage == stage {
			b += c.Bytes
		}
	}
	return b
}

// StageMsgs sums the stage's message count across workers and layers.
func (r *EpochRecord) StageMsgs(stage string) int64 {
	var n int64
	for _, c := range r.Cells {
		if c.Stage == stage {
			n += c.Msgs
		}
	}
	return n
}

// TotalBytes sums traffic across every cell. Each logical message is counted
// once on the sender and once on the receiver, so clean-fabric runs report
// exactly 2× the logical wire volume here.
func (r *EpochRecord) TotalBytes() int64 {
	var b int64
	for _, c := range r.Cells {
		b += c.Bytes
	}
	return b
}

// recorderKeep bounds the retained epoch history; beyond it the oldest
// records are dropped (long nstrain runs must not grow without bound).
const recorderKeep = 4096

// FlightRecorder collects per-epoch stage attribution. One recorder serves
// one engine; BeginEpoch/EndEpoch bracket each epoch, worker goroutines feed
// cells through StageClock (time) and AddTraffic (bytes). All methods are
// safe for concurrent use and no-ops on a nil receiver.
type FlightRecorder struct {
	cur atomic.Pointer[epochAccum]

	mu   sync.Mutex
	recs []EpochRecord
}

// NewFlightRecorder returns an empty recorder.
func NewFlightRecorder() *FlightRecorder { return &FlightRecorder{} }

// BeginEpoch opens the accumulator for one epoch over the given cluster
// shape. An already-open epoch is discarded (protocol misuse, not fatal).
func (r *FlightRecorder) BeginEpoch(epoch, workers, layers int) {
	if r == nil || workers <= 0 || layers < 0 {
		return
	}
	a := &epochAccum{
		epoch: epoch, workers: workers, layers: layers,
		cells: make([]stageCell, workers*int(NumStages)*(layers+1)),
	}
	r.cur.Store(a)
}

// EndEpoch closes the open epoch into an immutable record. Attribution
// arriving after the swap (e.g. a late duplicate delivery) is dropped —
// exactly-once counting is decided at the dedup point, not here.
func (r *FlightRecorder) EndEpoch(wall time.Duration, loss float64) {
	if r == nil {
		return
	}
	a := r.cur.Swap(nil)
	if a == nil {
		return
	}
	rec := EpochRecord{
		Epoch: a.epoch, WallSeconds: wall.Seconds(), Loss: loss,
		Workers: a.workers, Layers: a.layers,
	}
	for w := 0; w < a.workers; w++ {
		for s := Stage(0); s < NumStages; s++ {
			for l := 0; l <= a.layers; l++ {
				c := &a.cells[(w*int(NumStages)+int(s))*(a.layers+1)+l]
				nanos, bytes, msgs := c.nanos.Load(), c.bytes.Load(), c.msgs.Load()
				if nanos == 0 && bytes == 0 && msgs == 0 {
					continue
				}
				rec.Cells = append(rec.Cells, StageCell{
					Worker: w, Stage: s.String(), Layer: l,
					Seconds: float64(nanos) / 1e9, Bytes: bytes, Msgs: msgs,
				})
			}
		}
	}
	r.mu.Lock()
	if len(r.recs) >= recorderKeep {
		copy(r.recs, r.recs[1:])
		r.recs = r.recs[:len(r.recs)-1]
	}
	r.recs = append(r.recs, rec)
	r.mu.Unlock()
}

// AddTraffic attributes bytes and message counts to a stage cell of the open
// epoch. A no-op when no epoch is open (e.g. inference traffic between
// epochs) — time attribution has the same property via Clock.
func (r *FlightRecorder) AddTraffic(worker int, s Stage, layer int, bytes, msgs int64) {
	if r == nil {
		return
	}
	a := r.cur.Load()
	if a == nil {
		return
	}
	if c := a.cell(worker, s, layer); c != nil {
		c.bytes.Add(bytes)
		c.msgs.Add(msgs)
	}
}

// AddTime attributes a duration directly to a stage cell of the open epoch —
// for intervals measured outside a worker's StageClock (barrier tails,
// checkpoint saves). Non-positive durations are dropped.
func (r *FlightRecorder) AddTime(worker int, s Stage, layer int, d time.Duration) {
	if r == nil || d <= 0 {
		return
	}
	a := r.cur.Load()
	if a == nil {
		return
	}
	if c := a.cell(worker, s, layer); c != nil {
		c.nanos.Add(int64(d))
	}
}

// Clock starts a stage clock for one worker of the open epoch, initially in
// StageForward at layer 1. Returns nil (a no-op clock) when the recorder is
// nil or no epoch is open. The clock must be used from a single goroutine.
func (r *FlightRecorder) Clock(worker int) *StageClock {
	if r == nil {
		return nil
	}
	a := r.cur.Load()
	if a == nil || worker < 0 || worker >= a.workers {
		return nil
	}
	return &StageClock{acc: a, worker: worker, stage: StageForward, layer: 1, last: time.Now()}
}

// Snapshot returns a copy of every completed epoch record, oldest first.
func (r *FlightRecorder) Snapshot() []EpochRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]EpochRecord, len(r.recs))
	copy(out, r.recs)
	return out
}

// Epochs returns the number of completed epoch records.
func (r *FlightRecorder) Epochs() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recs)
}

// StageClock attributes one worker goroutine's wall time exclusively: at any
// instant the worker is in exactly one (stage, layer), and Switch charges the
// elapsed time to the stage being left. The per-worker stage sum therefore
// equals the worker's measured span exactly — there is no "untracked" bucket
// to hide time in. Not safe for concurrent use; nil is a no-op.
type StageClock struct {
	acc    *epochAccum
	worker int
	stage  Stage
	layer  int
	last   time.Time
}

// Switch charges elapsed time to the current stage and enters (s, layer).
func (c *StageClock) Switch(s Stage, layer int) {
	if c == nil || c.acc == nil {
		return
	}
	now := time.Now()
	if d := now.Sub(c.last); d > 0 {
		if cell := c.acc.cell(c.worker, c.stage, c.layer); cell != nil {
			cell.nanos.Add(int64(d))
		}
	}
	c.stage, c.layer, c.last = s, layer, now
}

// End charges the final interval and detaches the clock.
func (c *StageClock) End() {
	if c == nil || c.acc == nil {
		return
	}
	c.Switch(c.stage, c.layer)
	c.acc = nil
}
