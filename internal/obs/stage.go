package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// The epoch flight recorder attributes every nanosecond of an epoch's wall
// time, and every byte that crosses the fabric, to a fixed stage taxonomy —
// per worker, per layer, per epoch. It is the measurement substrate for the
// paper's §6 evaluation style breakdowns (computation vs. communication time
// and traffic volume) and for the cost-model validator: Eq. 1–3 predict
// seconds per stage, and the recorder supplies the measured counterpart.
//
// Design constraints, in order:
//
//  1. Correctness of the accounting identity. Per worker, the stage times of
//     one epoch partition the worker's wall time with no gaps: StageClock is
//     an exclusive state machine that attributes elapsed-since-last-switch to
//     the stage being left, so the per-worker sum equals the worker's span
//     by construction, not by hoping every interval was wrapped.
//  2. Low overhead. One clock per worker goroutine (no locks, no maps on the
//     hot path — a Switch is one monotonic clock read and one atomic add);
//     byte attribution is one atomic add per message.
//  3. Nil safety. A nil *FlightRecorder and a nil *StageClock are no-ops, so
//     instrumented paths cost nothing when recording is off — matching the
//     Tracer/Span convention of this package.

// Stage is one slot of the fixed attribution taxonomy.
type Stage uint8

// The stage taxonomy. Time and traffic cells are indexed (worker, stage,
// layer); stages without a meaningful layer use layer cell 0.
const (
	// StageForward is forward-pass compute (vertex/edge kernels, tape
	// bookkeeping, pre-transforms).
	StageForward Stage = iota
	// StageBackward is backward-pass compute (tape backward, loss, seed
	// assembly, gradient collection).
	StageBackward
	// StageDepFetchSend is time spent packing/sending master rows and waiting
	// for sends to drain (GetFromDepNbr, sender side).
	StageDepFetchSend
	// StageDepFetchRecv is time blocked on arriving dependency rows and
	// unpacking them (GetFromDepNbr, receiver side).
	StageDepFetchRecv
	// StageMirrorScatter covers mirror-gradient exchange in the backward pass
	// (PostToDepNbr), both posting and waiting.
	StageMirrorScatter
	// StageGradSync is parameter-gradient synchronisation: ring all-reduce or
	// parameter-server exchange, plus clipping and the optimiser step.
	StageGradSync
	// StageBarrier is the per-worker idle tail between a worker's own finish
	// and the slowest worker's finish — the epoch-synchronous straggler cost.
	StageBarrier
	// StageCheckpoint is snapshot serialisation at the epoch barrier. It is
	// recorded outside the epoch wall time (EpochStats.Duration excludes the
	// save), so it is excluded from the wall-coverage identity.
	StageCheckpoint
	// NumStages bounds the taxonomy.
	NumStages
)

var stageNames = [NumStages]string{
	"forward", "backward", "dep_fetch_send", "dep_fetch_recv",
	"mirror_scatter", "grad_sync", "barrier", "checkpoint",
}

// String returns the stage's stable snake_case name, used in JSON documents
// and the BENCH schema. These names are part of the BENCH.json contract.
func (s Stage) String() string {
	if s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// StageNames returns the taxonomy in stage order.
func StageNames() []string {
	out := make([]string, NumStages)
	copy(out, stageNames[:])
	return out
}

// stageCell is one (worker, stage, layer) accumulator.
type stageCell struct {
	nanos atomic.Int64
	bytes atomic.Int64
	msgs  atomic.Int64
}

// epochAccum is the live accumulator of one open epoch.
type epochAccum struct {
	epoch   int
	workers int
	layers  int
	cells   []stageCell // workers × NumStages × (layers+1)
	// causal, when non-nil, collects the epoch's event DAG (stage intervals
	// and message wait-matches) for critical-path extraction.
	causal *causalAccum
}

// causalAccum is the live causal-event log of one open epoch.
type causalAccum struct {
	traceID   uint64
	startWall time.Time // monotonic anchor: all offsets are relative to it
	startUnix int64     // matching wall-clock nanos, for message send stamps
	spanSeq   atomic.Uint64
	workers   []workerCausal
}

// workerCausal is one worker's slice of the causal log. Intervals and
// matches are appended from the worker's own goroutine; the mutex makes the
// log safe against scrapes and late fault-layer deliveries regardless.
type workerCausal struct {
	mu        sync.Mutex
	intervals []IntervalEvent
	matches   []MatchEvent
	// curSpan is the id of the worker's currently open stage interval, read
	// racily (atomically) by send stamping — background send goroutines may
	// observe the previous interval, which is an acceptable approximation.
	curSpan atomic.Uint64
}

// IntervalEvent is one closed stage interval of one worker: the compute
// nodes of the epoch's event DAG. Offsets are relative to the epoch start.
type IntervalEvent struct {
	Worker int
	Stage  Stage
	Layer  int
	SpanID uint64
	Start  time.Duration
	End    time.Duration
}

// MatchEvent is one matched cross-worker message wait: the edges of the
// epoch's event DAG. Worker blocked on the message from Sent (the sender's
// stamped send time; equal to WaitStart when the message was untraced)
// until WaitEnd; a wait that found the message already pending has
// WaitEnd ≈ WaitStart. Offsets are relative to the epoch start.
type MatchEvent struct {
	Worker    int
	From      int
	Kind      string
	Layer     int
	Seq       int
	SpanID    uint64
	Sent      time.Duration
	WaitStart time.Duration
	WaitEnd   time.Duration
}

func (a *epochAccum) cell(worker int, s Stage, layer int) *stageCell {
	if worker < 0 || worker >= a.workers || s >= NumStages {
		return nil
	}
	if layer < 0 {
		layer = 0
	}
	if layer > a.layers {
		layer = a.layers
	}
	return &a.cells[(worker*int(NumStages)+int(s))*(a.layers+1)+layer]
}

// StageCell is one non-empty attribution cell of a finished epoch.
type StageCell struct {
	Worker  int     `json:"worker"`
	Stage   string  `json:"stage"`
	Layer   int     `json:"layer"`
	Seconds float64 `json:"seconds"`
	Bytes   int64   `json:"bytes,omitempty"`
	Msgs    int64   `json:"msgs,omitempty"`
}

// EpochRecord is the immutable flight record of one completed epoch. Cells
// holds only non-empty (worker, stage, layer) slots.
type EpochRecord struct {
	Epoch       int         `json:"epoch"`
	WallSeconds float64     `json:"wall_seconds"`
	Loss        float64     `json:"loss"`
	Workers     int         `json:"workers"`
	Layers      int         `json:"layers"`
	Cells       []StageCell `json:"cells"`
	// StragglerIndex is max/mean of per-worker busy seconds (all stages
	// except barrier and checkpoint): 1.0 means perfect balance, 2.0 means
	// the slowest worker did twice the mean work. Zero when unmeasurable.
	StragglerIndex float64 `json:"straggler_index,omitempty"`
	// BarrierShare is the fraction of the cluster's total wall time
	// (workers × wall) spent idling at the epoch barrier — the cost of skew.
	BarrierShare float64 `json:"barrier_share,omitempty"`
	// SlowestWorker is the worker with the most busy seconds this epoch.
	SlowestWorker int `json:"slowest_worker"`
	// CritPath is the epoch's critical path; nil unless causal recording was
	// enabled (see FlightRecorder.EnableCausal).
	CritPath *CritPath `json:"crit_path,omitempty"`
	// CausalStart anchors the causal offsets (Matches, CritPath spans) in
	// absolute time; zero when causal recording was off. Not serialised.
	CausalStart time.Time `json:"-"`
	// Matches holds the epoch's cross-worker wait-match events for flow-event
	// export; populated only under causal recording. Not serialised — the
	// JSON surface carries the distilled CritPath instead.
	Matches []MatchEvent `json:"-"`
}

// StageSeconds sums the stage's time across all workers and layers.
func (r *EpochRecord) StageSeconds(stage string) float64 {
	var s float64
	for _, c := range r.Cells {
		if c.Stage == stage {
			s += c.Seconds
		}
	}
	return s
}

// LayerStageSeconds sums the stage's time at one layer across workers.
func (r *EpochRecord) LayerStageSeconds(stage string, layer int) float64 {
	var s float64
	for _, c := range r.Cells {
		if c.Stage == stage && c.Layer == layer {
			s += c.Seconds
		}
	}
	return s
}

// StageBytes sums the stage's traffic across all workers and layers.
func (r *EpochRecord) StageBytes(stage string) int64 {
	var b int64
	for _, c := range r.Cells {
		if c.Stage == stage {
			b += c.Bytes
		}
	}
	return b
}

// StageMsgs sums the stage's message count across workers and layers.
func (r *EpochRecord) StageMsgs(stage string) int64 {
	var n int64
	for _, c := range r.Cells {
		if c.Stage == stage {
			n += c.Msgs
		}
	}
	return n
}

// TotalBytes sums traffic across every cell. Each logical message is counted
// once on the sender and once on the receiver, so clean-fabric runs report
// exactly 2× the logical wire volume here.
func (r *EpochRecord) TotalBytes() int64 {
	var b int64
	for _, c := range r.Cells {
		b += c.Bytes
	}
	return b
}

// recorderKeep bounds the retained epoch history; beyond it the oldest
// records are dropped (long nstrain runs must not grow without bound).
const recorderKeep = 4096

// FlightRecorder collects per-epoch stage attribution. One recorder serves
// one engine; BeginEpoch/EndEpoch bracket each epoch, worker goroutines feed
// cells through StageClock (time) and AddTraffic (bytes). All methods are
// safe for concurrent use and no-ops on a nil receiver.
type FlightRecorder struct {
	cur atomic.Pointer[epochAccum]

	// id distinguishes this recorder's trace ids from other recorders in the
	// same process; causal switches BeginEpoch to event-DAG collection.
	id     uint64
	causal atomic.Bool

	mu   sync.Mutex
	recs []EpochRecord
}

// recorderSeq allocates process-unique recorder ids for trace-id spaces.
var recorderSeq atomic.Uint64

// NewFlightRecorder returns an empty recorder.
func NewFlightRecorder() *FlightRecorder {
	return &FlightRecorder{id: recorderSeq.Add(1)}
}

// EnableCausal switches the recorder to causal mode: every following epoch
// also collects its event DAG (per-worker stage intervals plus cross-worker
// message wait-matches) and closes with a critical-path extraction. The
// per-event cost is one mutex-protected append; recording stays cheap enough
// for always-on use but is opt-in because the log grows with message count.
func (r *FlightRecorder) EnableCausal() {
	if r == nil {
		return
	}
	r.causal.Store(true)
}

// CausalEnabled reports whether causal recording is on.
func (r *FlightRecorder) CausalEnabled() bool {
	return r != nil && r.causal.Load()
}

// BeginEpoch opens the accumulator for one epoch over the given cluster
// shape. An already-open epoch is discarded (protocol misuse, not fatal).
func (r *FlightRecorder) BeginEpoch(epoch, workers, layers int) {
	if r == nil || workers <= 0 || layers < 0 {
		return
	}
	a := &epochAccum{
		epoch: epoch, workers: workers, layers: layers,
		cells: make([]stageCell, workers*int(NumStages)*(layers+1)),
	}
	if r.causal.Load() {
		now := time.Now()
		a.causal = &causalAccum{
			traceID:   r.id<<32 | uint64(uint32(epoch)),
			startWall: now,
			startUnix: now.UnixNano(),
			workers:   make([]workerCausal, workers),
		}
	}
	r.cur.Store(a)
}

// OnWaitMatch appends one message wait-match to the open epoch's causal log:
// worker matched the message (kind, layer, seq) from peer from, having
// blocked from waitStart to waitEnd; spanID and sentUnixNano come from the
// message's trace context (zero when the message was untraced). A no-op when
// the recorder is nil, causal recording is off, or no epoch is open.
func (r *FlightRecorder) OnWaitMatch(worker, from int, kind string, layer, seq int,
	spanID uint64, sentUnixNano int64, waitStart, waitEnd time.Time) {
	if r == nil {
		return
	}
	a := r.cur.Load()
	if a == nil || a.causal == nil || worker < 0 || worker >= a.workers {
		return
	}
	ca := a.causal
	m := MatchEvent{
		Worker: worker, From: from, Kind: kind, Layer: layer, Seq: seq,
		SpanID:    spanID,
		WaitStart: waitStart.Sub(ca.startWall),
		WaitEnd:   waitEnd.Sub(ca.startWall),
	}
	if sentUnixNano > 0 {
		m.Sent = time.Duration(sentUnixNano - ca.startUnix)
	} else {
		// Untraced message: the visible blocking interval is all we know.
		m.Sent = m.WaitStart
	}
	wc := &ca.workers[worker]
	wc.mu.Lock()
	wc.matches = append(wc.matches, m)
	wc.mu.Unlock()
}

// CausalSendContext allocates the trace context for one logical message send
// by worker: the epoch's trace id, a fresh span id (which doubles as the
// flow-event id), the sender's currently open stage interval as parent, and
// the send wall-clock stamp. ok is false — and the values zero — when causal
// recording is off or no epoch is open; callers then leave the message
// untraced.
func (r *FlightRecorder) CausalSendContext(worker int) (traceID, spanID, parent uint64, sentUnixNano int64, ok bool) {
	if r == nil {
		return 0, 0, 0, 0, false
	}
	a := r.cur.Load()
	if a == nil || a.causal == nil || worker < 0 || worker >= a.workers {
		return 0, 0, 0, 0, false
	}
	ca := a.causal
	return ca.traceID, ca.spanSeq.Add(1), ca.workers[worker].curSpan.Load(),
		time.Now().UnixNano(), true
}

// EndEpoch closes the open epoch into an immutable record. Attribution
// arriving after the swap (e.g. a late duplicate delivery) is dropped —
// exactly-once counting is decided at the dedup point, not here.
func (r *FlightRecorder) EndEpoch(wall time.Duration, loss float64) {
	if r == nil {
		return
	}
	a := r.cur.Swap(nil)
	if a == nil {
		return
	}
	rec := EpochRecord{
		Epoch: a.epoch, WallSeconds: wall.Seconds(), Loss: loss,
		Workers: a.workers, Layers: a.layers,
	}
	busy := make([]float64, a.workers)
	var barrier float64
	for w := 0; w < a.workers; w++ {
		for s := Stage(0); s < NumStages; s++ {
			for l := 0; l <= a.layers; l++ {
				c := &a.cells[(w*int(NumStages)+int(s))*(a.layers+1)+l]
				nanos, bytes, msgs := c.nanos.Load(), c.bytes.Load(), c.msgs.Load()
				if nanos == 0 && bytes == 0 && msgs == 0 {
					continue
				}
				sec := float64(nanos) / 1e9
				switch s {
				case StageBarrier:
					barrier += sec
				case StageCheckpoint:
					// Outside the epoch wall; neither busy nor barrier.
				default:
					busy[w] += sec
				}
				rec.Cells = append(rec.Cells, StageCell{
					Worker: w, Stage: s.String(), Layer: l,
					Seconds: sec, Bytes: bytes, Msgs: msgs,
				})
			}
		}
	}
	var sum, max float64
	for w, b := range busy {
		sum += b
		if b > max {
			max = b
			rec.SlowestWorker = w
		}
	}
	if mean := sum / float64(a.workers); mean > 0 {
		rec.StragglerIndex = max / mean
	}
	if total := float64(a.workers) * wall.Seconds(); total > 0 {
		rec.BarrierShare = barrier / total
	}
	if ca := a.causal; ca != nil {
		rec.CausalStart = ca.startWall
		intervals := make([][]IntervalEvent, a.workers)
		matches := make([][]MatchEvent, a.workers)
		for w := range ca.workers {
			wc := &ca.workers[w]
			wc.mu.Lock()
			intervals[w] = wc.intervals
			matches[w] = wc.matches
			wc.mu.Unlock()
			rec.Matches = append(rec.Matches, matches[w]...)
		}
		rec.CritPath = extractCritPath(wall, intervals, matches)
	}
	r.mu.Lock()
	if len(r.recs) >= recorderKeep {
		copy(r.recs, r.recs[1:])
		r.recs = r.recs[:len(r.recs)-1]
	}
	r.recs = append(r.recs, rec)
	r.mu.Unlock()
}

// AddTraffic attributes bytes and message counts to a stage cell of the open
// epoch. A no-op when no epoch is open (e.g. inference traffic between
// epochs) — time attribution has the same property via Clock.
func (r *FlightRecorder) AddTraffic(worker int, s Stage, layer int, bytes, msgs int64) {
	if r == nil {
		return
	}
	a := r.cur.Load()
	if a == nil {
		return
	}
	if c := a.cell(worker, s, layer); c != nil {
		c.bytes.Add(bytes)
		c.msgs.Add(msgs)
	}
}

// AddTime attributes a duration directly to a stage cell of the open epoch —
// for intervals measured outside a worker's StageClock (barrier tails,
// checkpoint saves). Non-positive durations are dropped.
func (r *FlightRecorder) AddTime(worker int, s Stage, layer int, d time.Duration) {
	if r == nil || d <= 0 {
		return
	}
	a := r.cur.Load()
	if a == nil {
		return
	}
	if c := a.cell(worker, s, layer); c != nil {
		c.nanos.Add(int64(d))
	}
}

// Clock starts a stage clock for one worker of the open epoch, initially in
// StageForward at layer 1. Returns nil (a no-op clock) when the recorder is
// nil or no epoch is open. The clock must be used from a single goroutine.
func (r *FlightRecorder) Clock(worker int) *StageClock {
	if r == nil {
		return nil
	}
	a := r.cur.Load()
	if a == nil || worker < 0 || worker >= a.workers {
		return nil
	}
	c := &StageClock{acc: a, worker: worker, stage: StageForward, layer: 1, last: time.Now()}
	if ca := a.causal; ca != nil {
		c.spanID = ca.spanSeq.Add(1)
		ca.workers[worker].curSpan.Store(c.spanID)
	}
	return c
}

// Snapshot returns a copy of every completed epoch record, oldest first.
func (r *FlightRecorder) Snapshot() []EpochRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]EpochRecord, len(r.recs))
	copy(out, r.recs)
	return out
}

// Epochs returns the number of completed epoch records.
func (r *FlightRecorder) Epochs() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recs)
}

// Last returns the most recently completed epoch record, if any.
func (r *FlightRecorder) Last() (EpochRecord, bool) {
	if r == nil {
		return EpochRecord{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.recs) == 0 {
		return EpochRecord{}, false
	}
	return r.recs[len(r.recs)-1], true
}

// StageClock attributes one worker goroutine's wall time exclusively: at any
// instant the worker is in exactly one (stage, layer), and Switch charges the
// elapsed time to the stage being left. The per-worker stage sum therefore
// equals the worker's measured span exactly — there is no "untracked" bucket
// to hide time in. Not safe for concurrent use; nil is a no-op.
type StageClock struct {
	acc    *epochAccum
	worker int
	stage  Stage
	layer  int
	last   time.Time
	// spanID identifies the currently open interval under causal recording.
	spanID uint64
}

// Switch charges elapsed time to the current stage and enters (s, layer).
func (c *StageClock) Switch(s Stage, layer int) {
	if c == nil || c.acc == nil {
		return
	}
	now := time.Now()
	if d := now.Sub(c.last); d > 0 {
		if cell := c.acc.cell(c.worker, c.stage, c.layer); cell != nil {
			cell.nanos.Add(int64(d))
		}
	}
	if ca := c.acc.causal; ca != nil {
		wc := &ca.workers[c.worker]
		start, end := c.last.Sub(ca.startWall), now.Sub(ca.startWall)
		if end > start {
			wc.mu.Lock()
			wc.intervals = append(wc.intervals, IntervalEvent{
				Worker: c.worker, Stage: c.stage, Layer: c.layer,
				SpanID: c.spanID, Start: start, End: end,
			})
			wc.mu.Unlock()
		}
		c.spanID = ca.spanSeq.Add(1)
		wc.curSpan.Store(c.spanID)
	}
	c.stage, c.layer, c.last = s, layer, now
}

// End charges the final interval and detaches the clock.
func (c *StageClock) End() {
	if c == nil || c.acc == nil {
		return
	}
	c.Switch(c.stage, c.layer)
	c.acc = nil
}
