package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the opt-in debug server: it exposes the metric registry, a
// liveness probe, JSON snapshots, and the stdlib pprof profiles on one
// listener. Endpoints:
//
//	/metrics       registry exposition (classic text or OpenMetrics with
//	               exemplars, negotiated via Accept)
//	/healthz       200 "ok" liveness probe
//	/status        JSON snapshot from the Status callback
//	/epochs        JSON flight-recorder timeline from the Epochs callback
//	/critpath      JSON per-epoch critical paths from the CritPath callback
//	/healthwatch   JSON watchdog HealthReport from the HealthWatch callback
//	/timeline      windowed metric time series from the History (404 when no
//	               history is wired)
//	/debug/pprof/  net/http/pprof index (profile, heap, goroutine, trace, …)
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Endpoints supplies the JSON snapshot callbacks of a debug server. Each
// callback is invoked per request and must be safe for concurrent use; a nil
// callback makes its endpoint serve an empty object.
type Endpoints struct {
	// Status serves /status: the run's live status snapshot.
	Status func() any
	// Epochs serves /epochs: the flight-recorder timeline.
	Epochs func() any
	// CritPath serves /critpath: per-epoch critical paths and straggler
	// indices (causal recording must be enabled for paths to be non-null).
	CritPath func() any
	// HealthWatch serves /healthwatch: the watchdog's HealthReport.
	HealthWatch func() any
	// History, when non-nil, serves /timeline: windowed time series of every
	// registry metric (see TimelineHandler for the query grammar).
	History *History
}

// NewServer binds addr (":8080", "127.0.0.1:0", …) and serves in the
// background until Close. reg defaults to Default() when nil. The bound
// address — useful with port 0 — is available via Addr.
func NewServer(addr string, reg *Registry, eps Endpoints) (*Server, error) {
	if reg == nil {
		reg = Default()
	}
	serveJSON := func(cb func() any) http.HandlerFunc {
		return func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			var v any = struct{}{}
			if cb != nil {
				v = cb()
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(v); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", MetricsHandler(reg))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/status", serveJSON(eps.Status))
	mux.HandleFunc("/epochs", serveJSON(eps.Epochs))
	mux.HandleFunc("/critpath", serveJSON(eps.CritPath))
	mux.HandleFunc("/healthwatch", serveJSON(eps.HealthWatch))
	if eps.History != nil {
		mux.HandleFunc("/timeline", TimelineHandler(eps.History))
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately; in-flight requests are aborted.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
