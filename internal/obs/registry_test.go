package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ns_test_events_total", "events")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotone
	if c.Value() != 3.5 {
		t.Fatalf("counter = %v", c.Value())
	}
	g := r.Gauge("ns_test_temp", "temp")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	// Nil receivers are no-ops.
	var nc *Counter
	nc.Inc()
	var ng *Gauge
	ng.Set(1)
	var nh *Histogram
	nh.Observe(1)
	if nc.Value() != 0 || ng.Value() != 0 || nh.Count() != 0 {
		t.Fatal("nil metric recorded")
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ns_test_x_total", "x")
	b := r.Counter("ns_test_x_total", "x")
	if a != b {
		t.Fatal("same name should return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("aliases diverged")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch should panic")
		}
	}()
	r.Gauge("ns_test_x_total", "x")
}

func TestLabelCardinality(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ns_test_bytes_total", "bytes", "peer")
	v.With("0").Add(10)
	v.With("1").Add(20)
	v.With("0").Add(5)
	if got := v.With("0").Value(); got != 15 {
		t.Fatalf("peer 0 = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label count should panic")
		}
	}()
	v.With("a", "b")
}

// TestPrometheusGolden validates the full exposition output: HELP/TYPE
// lines, label ordering and escaping, and the histogram
// _bucket/_sum/_count expansion with a trailing +Inf bucket.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("ns_a_total", "Counts \"a\" events.\nSecond line.", "kind", "peer")
	cv.With("rep", "1").Add(3)
	cv.With(`we"ird\value`, "0").Inc()
	r.Gauge("ns_b_ratio", "A ratio.").Set(0.25)
	h := r.Histogram("ns_c_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP ns_a_total Counts "a" events.\nSecond line.
# TYPE ns_a_total counter
ns_a_total{kind="rep",peer="1"} 3
ns_a_total{kind="we\"ird\\value",peer="0"} 1
# HELP ns_b_ratio A ratio.
# TYPE ns_b_ratio gauge
ns_b_ratio 0.25
# HELP ns_c_seconds Latency.
# TYPE ns_c_seconds histogram
ns_c_seconds_bucket{le="0.1"} 1
ns_c_seconds_bucket{le="1"} 3
ns_c_seconds_bucket{le="+Inf"} 4
ns_c_seconds_sum 6.05
ns_c_seconds_count 4
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ns_h_seconds", "h", []float64{0.001, 0.01, 0.1})
	vals := []float64{0.0005, 0.001, 0.005, 0.05, 0.5, 2}
	var sum float64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	if h.Count() != uint64(len(vals)) {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-sum) > 1e-12 {
		t.Fatalf("sum = %v want %v", h.Sum(), sum)
	}
	// Boundary values are inclusive: 0.001 lands in the le="0.001" bucket.
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`ns_h_seconds_bucket{le="0.001"} 2`,
		`ns_h_seconds_bucket{le="0.01"} 3`,
		`ns_h_seconds_bucket{le="0.1"} 4`,
		`ns_h_seconds_bucket{le="+Inf"} 6`,
		`ns_h_seconds_count 6`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
}

func TestBucketHelpers(t *testing.T) {
	e := ExpBuckets(1, 2, 4)
	if len(e) != 4 || e[0] != 1 || e[3] != 8 {
		t.Fatalf("ExpBuckets = %v", e)
	}
	l := LinearBuckets(0, 5, 3)
	if len(l) != 3 || l[2] != 10 {
		t.Fatalf("LinearBuckets = %v", l)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ns_conc_total", "c", "w")
	h := r.Histogram("ns_conc_seconds", "h", TimeBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v.With(string(rune('0' + w))).Inc()
				h.Observe(float64(i) * 1e-5)
			}
		}(w)
	}
	wg.Wait()
	var total float64
	for w := 0; w < 8; w++ {
		total += v.With(string(rune('0' + w))).Value()
	}
	if total != 1600 || h.Count() != 1600 {
		t.Fatalf("total = %v, hist count = %d", total, h.Count())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
}
