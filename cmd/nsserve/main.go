// Command nsserve answers online inference queries (predictions, embeddings,
// link scores) over a trained model, with GLT-style decoupled extraction and
// compute pools, micro-batching, and a byte-budgeted embedding cache.
//
// Serve a model trained and saved by nstrain:
//
//	nstrain -dataset cora -model gcn -epochs 30 -save-model /tmp/gcn.model
//	nsserve -dataset cora -model gcn -load-model /tmp/gcn.model -addr :8090
//
// Or train in-process first, then serve the live parameters:
//
//	nsserve -dataset cora -model gcn -train 30 -addr :8090
//
// Endpoints: POST /predict /embed /linkscore (JSON), GET /stats /healthz
// /metrics /timeline /healthwatch. Query it with curl, drive sustained load
// with nsload, or watch it live with nstat:
//
//	curl -s localhost:8090/predict -d '{"vertices":[0,1,2]}'
//	nsload -addr localhost:8090 -requests 500 -concurrency 8
//	nstat -addr localhost:8090
//
// Every query response carries a Server-Timing header with the request's
// queue/cache/extract/compute breakdown and an X-NS-Trace-Id correlating it
// with latency-histogram exemplars and the -trace Chrome export.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"neutronstar"
	"neutronstar/internal/obs"
	"neutronstar/internal/serve"
)

func main() {
	var (
		dsName    = flag.String("dataset", "cora", "dataset name ("+strings.Join(neutronstar.DatasetNames(), ", ")+")")
		model     = flag.String("model", "gcn", "model: gcn, gin, gat, sage (must match the saved model)")
		layers    = flag.Int("layers", 0, "propagation depth L (0 = default 2; must match the saved model)")
		workers   = flag.Int("workers", 1, "simulated cluster size for the backing session")
		seed      = flag.Uint64("seed", 1, "session seed (also folded into sampled-query RNGs)")
		loadModel = flag.String("load-model", "", "serve parameters from this file (written by nstrain -save-model)")
		trainN    = flag.Int("train", 0, "train this many epochs in-process before serving")
		lr        = flag.Float64("lr", 0.01, "learning rate for -train")

		addr       = flag.String("addr", ":8090", "HTTP listen address")
		maxBatch   = flag.Int("max-batch", 32, "micro-batch flush threshold in queried vertices")
		maxWait    = flag.Duration("max-wait", 2*time.Millisecond, "micro-batch flush deadline")
		cacheBytes = flag.Int64("cache-bytes", 8<<20, "embedding cache budget in bytes (0 disables)")
		extractW   = flag.Int("extract-workers", 2, "extraction (graph walk) pool size")
		computeW   = flag.Int("compute-workers", 2, "compute (NN forward) pool size")

		watchSpec = flag.String("watch-rules", "", "serving SLO rules, e.g. 'slo_p99=250ms,hitrate=0.3,slo_window=30s' (empty disables)")
		trace     = flag.String("trace", "", "write a Chrome trace of the extract/compute pools to this file on shutdown")

		logJSON  = flag.Bool("log-json", false, "emit log lines as JSON instead of key=value text")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()

	log := obs.NewLogger(os.Stdout).WithJSON(*logJSON)
	log.SetLevel(obs.ParseLevel(*logLevel))
	fail := func(err error) {
		log.Error("fatal", "err", err)
		os.Exit(1)
	}
	rules, err := obs.ParseWatchRules(*watchSpec)
	if err != nil {
		fail(fmt.Errorf("-watch-rules: %w", err))
	}
	if *loadModel == "" && *trainN <= 0 {
		fail(fmt.Errorf("need a model: pass -load-model FILE or -train EPOCHS"))
	}

	ds, err := neutronstar.LoadDataset(*dsName)
	if err != nil {
		fail(err)
	}
	log.Info("dataset loaded", "dataset", ds.Name(),
		"vertices", ds.NumVertices(), "edges", ds.NumEdges())

	s, err := neutronstar.NewSession(ds, neutronstar.Config{
		Workers: *workers,
		Model:   neutronstar.ModelKind(*model),
		Layers:  *layers,
		LR:      *lr,
		Seed:    *seed,
	})
	if err != nil {
		fail(err)
	}
	defer s.Close()

	if *loadModel != "" {
		f, err := os.Open(*loadModel)
		if err != nil {
			fail(err)
		}
		if err := s.LoadModel(f); err != nil {
			fail(fmt.Errorf("loading %s (does -model/-layers match how it was trained?): %w", *loadModel, err))
		}
		f.Close()
		log.Info("model loaded", "path", *loadModel, "model", *model)
	}
	if *trainN > 0 {
		eps := s.Train(*trainN)
		last := eps[len(eps)-1]
		log.Info("trained", "epochs", *trainN, "final_loss", last.Loss,
			"test_accuracy", s.Accuracy(neutronstar.SplitTest))
	}

	cfg := s.ServeConfig()
	cfg.MaxBatch = *maxBatch
	cfg.MaxWait = *maxWait
	cfg.CacheBytes = *cacheBytes
	cfg.ExtractWorkers = *extractW
	cfg.ComputeWorkers = *computeW
	cfg.Seed = *seed
	var tracer *obs.Tracer
	if *trace != "" {
		tracer = obs.NewTracer()
		cfg.Tracer = tracer
	}
	srv, err := serve.New(cfg)
	if err != nil {
		fail(err)
	}
	defer srv.Close()

	// The observability plane: constant build-info gauge, a 1s-sampled metric
	// history behind /timeline, and the SLO watchdog evaluated on every
	// sample behind /healthwatch.
	obs.RegisterBuildInfo(obs.Default())
	hist := obs.NewHistory(obs.Default(), 0)
	watch := obs.NewWatchdog(rules, log, obs.Default())
	if rules.Enabled() {
		hist.SetOnSample(func() { watch.EvaluateSLO(hist) })
	}
	hist.Start(obs.DefaultHistoryStep)
	defer hist.Stop()

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/timeline", obs.TimelineHandler(hist))
	mux.HandleFunc("/healthwatch", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(watch.Health())
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	hs := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			fail(err)
		}
	}()
	log.Info("serving", "addr", ln.Addr().String(), "model", *model,
		"version", srv.ModelVersion(), "max_batch", *maxBatch, "max_wait", maxWait.String(),
		"cache_bytes", *cacheBytes, "extract_workers", *extractW, "compute_workers", *computeW,
		"watch_rules", *watchSpec,
		"endpoints", "/predict /embed /linkscore /stats /timeline /healthwatch /healthz /metrics")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Info("shutting down")
	_ = hs.Close()
	srv.Close()
	if tracer != nil {
		if err := writeServeTrace(*trace, tracer, *extractW); err != nil {
			log.Error("trace export failed", "path", *trace, "err", err)
		} else {
			log.Info("trace written", "path", *trace, "spans", len(tracer.Snapshot()))
		}
	}
	st := srv.Stats()
	log.Info("served", "requests", st.Requests, "errors", st.Errors,
		"batches", st.Batches, "cache_hits", st.Cache.Hits, "cache_misses", st.Cache.Misses)
}

// writeServeTrace exports the serving pools' spans as a Chrome trace, naming
// the rows after their pool: extract workers first, compute workers after
// (the row layout serve.Config.Tracer documents).
func writeServeTrace(path string, tracer *obs.Tracer, extractWorkers int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteChromeTrace(f, func(worker int) string {
		if worker < extractWorkers {
			return fmt.Sprintf("extract-%d", worker)
		}
		return fmt.Sprintf("compute-%d", worker-extractWorkers)
	}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
