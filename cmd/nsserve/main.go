// Command nsserve answers online inference queries (predictions, embeddings,
// link scores) over a trained model, with GLT-style decoupled extraction and
// compute pools, micro-batching, and a byte-budgeted embedding cache.
//
// Serve a model trained and saved by nstrain:
//
//	nstrain -dataset cora -model gcn -epochs 30 -save-model /tmp/gcn.model
//	nsserve -dataset cora -model gcn -load-model /tmp/gcn.model -addr :8090
//
// Or train in-process first, then serve the live parameters:
//
//	nsserve -dataset cora -model gcn -train 30 -addr :8090
//
// Endpoints: POST /predict /embed /linkscore (JSON), GET /stats /healthz
// /metrics. Query it with curl or drive sustained load with nsload:
//
//	curl -s localhost:8090/predict -d '{"vertices":[0,1,2]}'
//	nsload -addr localhost:8090 -requests 500 -concurrency 8
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"neutronstar"
	"neutronstar/internal/obs"
	"neutronstar/internal/serve"
)

func main() {
	var (
		dsName    = flag.String("dataset", "cora", "dataset name ("+strings.Join(neutronstar.DatasetNames(), ", ")+")")
		model     = flag.String("model", "gcn", "model: gcn, gin, gat, sage (must match the saved model)")
		layers    = flag.Int("layers", 0, "propagation depth L (0 = default 2; must match the saved model)")
		workers   = flag.Int("workers", 1, "simulated cluster size for the backing session")
		seed      = flag.Uint64("seed", 1, "session seed (also folded into sampled-query RNGs)")
		loadModel = flag.String("load-model", "", "serve parameters from this file (written by nstrain -save-model)")
		trainN    = flag.Int("train", 0, "train this many epochs in-process before serving")
		lr        = flag.Float64("lr", 0.01, "learning rate for -train")

		addr       = flag.String("addr", ":8090", "HTTP listen address")
		maxBatch   = flag.Int("max-batch", 32, "micro-batch flush threshold in queried vertices")
		maxWait    = flag.Duration("max-wait", 2*time.Millisecond, "micro-batch flush deadline")
		cacheBytes = flag.Int64("cache-bytes", 8<<20, "embedding cache budget in bytes (0 disables)")
		extractW   = flag.Int("extract-workers", 2, "extraction (graph walk) pool size")
		computeW   = flag.Int("compute-workers", 2, "compute (NN forward) pool size")

		logJSON  = flag.Bool("log-json", false, "emit log lines as JSON instead of key=value text")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()

	log := obs.NewLogger(os.Stdout).WithJSON(*logJSON)
	log.SetLevel(obs.ParseLevel(*logLevel))
	fail := func(err error) {
		log.Error("fatal", "err", err)
		os.Exit(1)
	}
	if *loadModel == "" && *trainN <= 0 {
		fail(fmt.Errorf("need a model: pass -load-model FILE or -train EPOCHS"))
	}

	ds, err := neutronstar.LoadDataset(*dsName)
	if err != nil {
		fail(err)
	}
	log.Info("dataset loaded", "dataset", ds.Name(),
		"vertices", ds.NumVertices(), "edges", ds.NumEdges())

	s, err := neutronstar.NewSession(ds, neutronstar.Config{
		Workers: *workers,
		Model:   neutronstar.ModelKind(*model),
		Layers:  *layers,
		LR:      *lr,
		Seed:    *seed,
	})
	if err != nil {
		fail(err)
	}
	defer s.Close()

	if *loadModel != "" {
		f, err := os.Open(*loadModel)
		if err != nil {
			fail(err)
		}
		if err := s.LoadModel(f); err != nil {
			fail(fmt.Errorf("loading %s (does -model/-layers match how it was trained?): %w", *loadModel, err))
		}
		f.Close()
		log.Info("model loaded", "path", *loadModel, "model", *model)
	}
	if *trainN > 0 {
		eps := s.Train(*trainN)
		last := eps[len(eps)-1]
		log.Info("trained", "epochs", *trainN, "final_loss", last.Loss,
			"test_accuracy", s.Accuracy(neutronstar.SplitTest))
	}

	cfg := s.ServeConfig()
	cfg.MaxBatch = *maxBatch
	cfg.MaxWait = *maxWait
	cfg.CacheBytes = *cacheBytes
	cfg.ExtractWorkers = *extractW
	cfg.ComputeWorkers = *computeW
	cfg.Seed = *seed
	srv, err := serve.New(cfg)
	if err != nil {
		fail(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			fail(err)
		}
	}()
	log.Info("serving", "addr", ln.Addr().String(), "model", *model,
		"version", srv.ModelVersion(), "max_batch", *maxBatch, "max_wait", maxWait.String(),
		"cache_bytes", *cacheBytes, "extract_workers", *extractW, "compute_workers", *computeW,
		"endpoints", "/predict /embed /linkscore /stats /healthz /metrics")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Info("shutting down")
	_ = hs.Close()
	srv.Close()
	st := srv.Stats()
	log.Info("served", "requests", st.Requests, "errors", st.Errors,
		"batches", st.Batches, "cache_hits", st.Cache.Hits, "cache_misses", st.Cache.Misses)
}
