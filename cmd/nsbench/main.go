// Command nsbench regenerates the paper's tables and figures. Each -exp
// value corresponds to one table/figure of the evaluation section; see
// EXPERIMENTS.md for the mapping and the paper-reported numbers.
//
// Usage:
//
//	nsbench -exp fig2a
//	nsbench -exp fig10 -workers 8 -graphs google,reddit
//	nsbench -exp all -quick
//
// With -json the paper experiments are skipped and the fixed perf-smoke
// pipeline runs instead, writing a schema-versioned BENCH.json document
// (per-stage medians, traffic, cost-model residuals, straggler indices and
// per-run critical paths) for tools/benchdiff. Alongside it, -critpath
// writes the critical-path report as standalone JSON and -trace a Chrome
// trace of the bench engines with cross-worker flow arrows:
//
//	nsbench -json BENCH.json -workers 4 -trace trace.json -critpath critpath.json
//	nsbench -json BENCH.json -workers 4 -policy deptp
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync/atomic"

	"neutronstar/internal/bench"
	"neutronstar/internal/dataset"
	"neutronstar/internal/experiments"
	"neutronstar/internal/metrics"
	"neutronstar/internal/nn"
	"neutronstar/internal/obs"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment: table2 fig2a fig2b fig2c fig9 table3 fig10 fig11 fig12 fig13 fig14 fig15 table4 table5 ablations all")
		workers   = flag.Int("workers", 8, "simulated cluster size")
		epochs    = flag.Int("epochs", 3, "measured epochs per configuration")
		graphs    = flag.String("graphs", "", "comma-separated dataset subset (default: experiment-specific)")
		quick     = flag.Bool("quick", false, "cut-down scale for a fast smoke run")
		jsonOut   = flag.String("json", "", "write the perf-smoke BENCH.json document to this path and exit (ignores -exp)")
		policy    = flag.String("policy", "", "with -json, add extra <policy>-wN runs to the pipeline (comma-separated: depcache, depcomm, hybrid, deptp, hybrid3, deprep, hybrid4)")
		trace     = flag.String("trace", "", "write a Chrome trace of all experiment (or, with -json, bench) engines to this file")
		critPath  = flag.String("critpath", "", "with -json, also write the per-run critical-path report to this path")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /status, /healthz and pprof on this address (e.g. :8080)")
	)
	flag.Parse()
	if *critPath != "" && *jsonOut == "" {
		fmt.Fprintln(os.Stderr, "nsbench: -critpath requires -json (the report is produced by the perf-smoke pipeline)")
		os.Exit(2)
	}
	if *jsonOut != "" {
		if err := writeBenchDoc(*jsonOut, *workers, *trace, *critPath, *policy); err != nil {
			fmt.Fprintln(os.Stderr, "nsbench:", err)
			os.Exit(1)
		}
		return
	}
	if *policy != "" {
		fmt.Fprintln(os.Stderr, "nsbench: -policy requires -json (it extends the perf-smoke run set)")
		os.Exit(2)
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	// Reject nonsensical scales up front: a negative worker count would
	// otherwise surface as a partitioner panic several layers down.
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "nsbench: -workers must be non-negative, got %d\n", *workers)
		os.Exit(2)
	}
	if *epochs < 0 {
		fmt.Fprintf(os.Stderr, "nsbench: -epochs must be non-negative, got %d\n", *epochs)
		os.Exit(2)
	}
	if *graphs != "" {
		for _, g := range strings.Split(*graphs, ",") {
			if strings.TrimSpace(g) == "" {
				fmt.Fprintf(os.Stderr, "nsbench: -graphs contains an empty dataset name: %q\n", *graphs)
				os.Exit(2)
			}
		}
	}

	// current names the running experiment for the debug server's /status.
	var current atomic.Value
	current.Store("")
	if *debugAddr != "" {
		srv, err := obs.NewServer(*debugAddr, obs.Default(), obs.Endpoints{
			Status: func() any {
				return map[string]any{"experiment": current.Load()}
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("debug server on http://%s (/metrics /status /healthz /debug/pprof/)\n", srv.Addr())
	}
	if *trace != "" {
		coll := metrics.NewCollector()
		experiments.SetCollector(coll)
		defer func() {
			f, err := os.Create(*trace)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			if err := coll.WriteChromeTrace(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			fmt.Printf("trace written to %s\n", *trace)
		}()
	}

	sc := experiments.DefaultScale()
	if *quick {
		sc = experiments.QuickScale()
	}
	if *workers > 0 {
		sc.Workers = *workers
	}
	if *epochs > 0 {
		sc.Epochs = *epochs
	}
	if *graphs != "" {
		sc.Graphs = strings.Split(*graphs, ",")
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table2", "fig2a", "fig2b", "fig2c", "fig9", "table3",
			"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "table4", "table5",
			"ablations"}
	}
	for _, name := range names {
		current.Store(name)
		runExperiment(name, sc, *quick)
	}
}

// writeBenchDoc runs the fixed perf-smoke pipeline and writes BENCH.json.
// The workload and run set are pinned (see internal/bench) so documents from
// different commits are comparable; only the cluster size is adjustable.
// tracePath and critPathOut, when non-empty, additionally emit a Chrome
// trace of the bench engines and a standalone critical-path report.
func writeBenchDoc(path string, workers int, tracePath, critPathOut, policies string) error {
	if workers <= 0 {
		workers = 4
	}
	ds := dataset.Load(bench.BenchSpec())
	specs := bench.DefaultRuns(workers)
	if policies != "" {
		for _, policy := range strings.Split(policies, ",") {
			policy = strings.TrimSpace(policy)
			if policy == "" {
				return fmt.Errorf("-policy contains an empty policy name: %q", policies)
			}
			extra, err := bench.PolicyRun(policy, workers)
			if err != nil {
				return err
			}
			dup := false
			for _, s := range specs {
				if s.Name == extra.Name {
					dup = true // already in the set; don't run it twice
					break
				}
			}
			if !dup {
				specs = append(specs, extra)
			}
		}
	}
	var coll *metrics.Collector
	if tracePath != "" {
		coll = metrics.NewCollector()
		for i := range specs {
			specs[i].Collector = coll
		}
	}
	doc, err := bench.Execute(ds, specs)
	if err != nil {
		return err
	}
	if err := doc.Validate(); err != nil {
		return err
	}
	if err := doc.WriteFile(path); err != nil {
		return err
	}
	for _, r := range doc.Runs {
		line := fmt.Sprintf("%-14s wall_median=%.4fs epochs/s=%.2f bytes/epoch=%d coverage=%.3f",
			r.Name, r.WallMedianSeconds, r.EpochsPerSec, r.BytesPerEpoch, r.StageCoverage)
		if r.Workers > 1 {
			line += fmt.Sprintf(" straggler=%.2f", r.StragglerIndex)
		}
		if p := r.CritPath; p != nil {
			if label, share := p.Dominant(); label != "" {
				line += fmt.Sprintf(" critpath=%s@%.0f%%", label, 100*share)
			}
		}
		fmt.Println(line)
	}
	fmt.Printf("bench document written to %s\n", path)
	if coll != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := coll.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", tracePath)
	}
	if critPathOut != "" {
		if err := writeCritPathReport(critPathOut, doc); err != nil {
			return err
		}
		fmt.Printf("critical-path report written to %s\n", critPathOut)
	}
	return nil
}

// writeCritPathReport distils the document's causal fields into a standalone
// JSON report: per run, the straggler indices, the critical path, and its
// label breakdown — the artifact CI uploads next to the Chrome trace.
func writeCritPathReport(path string, doc *bench.Doc) error {
	type entry struct {
		Run            string             `json:"run"`
		Workers        int                `json:"workers"`
		WallMedian     float64            `json:"wall_median_seconds"`
		StragglerIndex float64            `json:"straggler_index"`
		BarrierShare   float64            `json:"barrier_share"`
		Dominant       string             `json:"dominant,omitempty"`
		DominantShare  float64            `json:"dominant_share,omitempty"`
		Breakdown      map[string]float64 `json:"breakdown,omitempty"`
		CritPath       *obs.CritPath      `json:"crit_path,omitempty"`
	}
	report := make([]entry, 0, len(doc.Runs))
	for _, r := range doc.Runs {
		e := entry{
			Run: r.Name, Workers: r.Workers, WallMedian: r.WallMedianSeconds,
			StragglerIndex: r.StragglerIndex, BarrierShare: r.BarrierShare,
			CritPath: r.CritPath,
		}
		if p := r.CritPath; p != nil {
			e.Breakdown = p.Breakdown()
			e.Dominant, e.DominantShare = p.Dominant()
		}
		report = append(report, e)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func runExperiment(name string, sc experiments.Scale, quick bool) {
	fmt.Printf("==== %s (workers=%d epochs=%d graphs=%v) ====\n", name, sc.Workers, sc.Epochs, sc.Graphs)
	printRows := func(rows []experiments.Row) {
		for _, r := range rows {
			fmt.Println("  " + r.Format())
		}
	}
	switch name {
	case "table2":
		for _, line := range experiments.Table2() {
			fmt.Println("  " + line)
		}
	case "fig2a":
		printRows(experiments.Fig2a(sc))
	case "fig2b":
		printRows(experiments.Fig2b(sc))
	case "fig2c":
		printRows(experiments.Fig2c(sc))
	case "fig9":
		printRows(experiments.Fig9(sc))
	case "table3":
		epochs := 10
		if quick {
			epochs = 2
		}
		fmt.Printf("  (runtime of %d epochs; the paper reports 100)\n", epochs)
		printRows(experiments.Table3(sc, epochs))
	case "fig10":
		printRows(experiments.Fig10(sc))
	case "fig11":
		fmt.Println("  GCN on reddit:")
		printRows(experiments.Fig11(sc, nn.GCN, "reddit"))
		if !quick {
			fmt.Println("  GAT on orkut:")
			printRows(experiments.Fig11(sc, nn.GAT, "orkut"))
		}
	case "fig12":
		sizes := []int{1, 2, 4, 8, 16}
		if quick {
			sizes = []int{1, 2, 4}
		}
		gs := sc.Graphs
		if len(gs) > 4 {
			gs = []string{"pokec", "reddit", "orkut", "wiki"}
		}
		for _, g := range gs {
			printRows(experiments.Fig12(g, sizes, sc.Epochs))
		}
	case "fig13":
		graph := "orkut"
		if quick {
			graph = "google"
		}
		for _, rep := range experiments.Fig13(sc, graph) {
			fmt.Printf("  %-12s accel_util=%.2f host_util=%.2f sample_util=%.2f net_peak=%.1fMB/s net_cv=%.2f recv=%.1fMB\n",
				rep.System, rep.AcceleratorUtil, rep.HostUtil, rep.SampleUtil,
				rep.NetPeakMBs, rep.NetSmoothnessCV, rep.TotalRecvMB)
		}
	case "fig14":
		maxEpochs, evalEvery := 45, 5
		if quick {
			maxEpochs, evalEvery = 6, 3
		}
		curves := experiments.Fig14(sc, maxEpochs, evalEvery, 0.95)
		for _, c := range curves {
			fmt.Printf("  %-18s best=%.4f time_to_95%%=%.1fs\n", c.System, c.Best, c.TimeToTarget)
			for _, p := range c.Points {
				fmt.Printf("      t=%6.1fs epoch=%3d acc=%.4f\n", p.Seconds, p.Epoch, p.Accuracy)
			}
		}
	case "fig15":
		gs := sc.Graphs
		if len(gs) > 3 {
			gs = []string{"reddit", "orkut", "wiki"}
		}
		sc2 := sc
		sc2.Graphs = gs
		printRows(experiments.Fig15(sc2))
	case "table4":
		gs := sc.Graphs
		if len(gs) > 4 {
			gs = []string{"google", "pokec", "livejournal", "reddit"}
		}
		sc2 := sc
		sc2.Graphs = gs
		printRows(experiments.Table4(sc2))
	case "table5":
		printRows(experiments.Table5(sc.Epochs))
	case "ablations":
		graph := "reddit"
		if quick {
			graph = "google"
		}
		printRows(experiments.Ablations(sc, graph))
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
		os.Exit(2)
	}
}
