// Command nstat is a live terminal dashboard for a NeutronStar serving or
// training process: it polls the /timeline, /stats and /healthwatch
// endpoints and renders QPS, latency quantiles, the per-stage serving
// breakdown, cache effectiveness, batcher behaviour, worker balance and
// active watchdog alerts as a self-refreshing text screen.
//
//	nsserve -dataset cora -model gcn -train 30 -addr :8090 &
//	nsload  -addr localhost:8090 -rate 100 -duration 60s &
//	nstat   -addr localhost:8090
//
// With -once it renders a single frame without clearing the screen — the
// form CI smoke jobs capture:
//
//	nstat -addr localhost:8090 -once
//
// Sections degrade independently: an endpoint the target does not serve
// (e.g. /stats on an nstrain debug address) just drops its section, so the
// same binary watches both serving and training processes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"neutronstar/internal/obs"
	"neutronstar/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:8090", "nsserve or nstrain debug address (host:port)")
		interval = flag.Duration("interval", 2*time.Second, "refresh interval")
		window   = flag.Duration("window", time.Minute, "trailing window the timeline series cover")
		once     = flag.Bool("once", false, "render one frame and exit (no screen clearing)")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-poll HTTP timeout")
	)
	flag.Parse()

	client := &http.Client{Timeout: *timeout}
	base := "http://" + *addr

	if *once {
		frame, err := render(client, base, *window, *interval)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nstat: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(frame)
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		frame, err := render(client, base, *window, *interval)
		// Clear screen + home, then draw; a failed poll shows the error in
		// place of the frame and keeps trying (the server may be restarting).
		fmt.Print("\x1b[2J\x1b[H")
		if err != nil {
			fmt.Printf("nstat: %v (retrying every %s)\n", err, interval)
		} else {
			fmt.Print(frame)
		}
		select {
		case <-sig:
			return
		case <-tick.C:
		}
	}
}

// render builds one dashboard frame. Each endpoint is optional; only all
// three failing is an error.
func render(client *http.Client, base string, window, step time.Duration) (string, error) {
	tl, errTL := fetchTimeline(client, base, window, step)
	st, errSt := fetchStats(client, base)
	hw, errHW := fetchHealth(client, base)
	if errTL != nil && errSt != nil && errHW != nil {
		return "", fmt.Errorf("no endpoint answered at %s: timeline: %v", base, errTL)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "nstat %s  %s\n", base, time.Now().Format("15:04:05"))
	if st != nil {
		fmt.Fprintf(&b, "model v%d  layers=%d classes=%d vertices=%d  requests=%d errors=%d\n",
			st.ModelVersion, st.Layers, st.Classes, st.NumVertices, st.Requests, st.Errors)
	}
	b.WriteString("\n")
	if tl != nil {
		renderServing(&b, tl)
		renderStages(&b, tl)
		renderCache(&b, tl, st)
		renderBatcher(&b, tl, st)
		renderWorkers(&b, tl)
	} else {
		fmt.Fprintf(&b, "timeline unavailable: %v\n", errTL)
	}
	renderAlerts(&b, hw, errHW)
	return b.String(), nil
}

func fetchTimeline(client *http.Client, base string, window, step time.Duration) (*obs.Timeline, error) {
	var tl obs.Timeline
	if err := fetchJSON(client, fmt.Sprintf("%s/timeline?window=%s&step=%s", base, window, step), &tl); err != nil {
		return nil, err
	}
	return &tl, nil
}

func fetchStats(client *http.Client, base string) (*serve.Stats, error) {
	var st serve.Stats
	if err := fetchJSON(client, base+"/stats", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

func fetchHealth(client *http.Client, base string) (*obs.HealthReport, error) {
	var hw obs.HealthReport
	if err := fetchJSON(client, base+"/healthwatch", &hw); err != nil {
		return nil, err
	}
	return &hw, nil
}

func fetchJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s returned %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// series finds one timeline series by metric name, stat and label subset.
func series(tl *obs.Timeline, name, stat string, labels map[string]string) *obs.TimelineSeries {
	for i := range tl.Series {
		s := &tl.Series[i]
		if s.Name != name || s.Stat != stat {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s
		}
	}
	return nil
}

// last returns a series' newest value (ok=false for a missing/empty series).
func last(s *obs.TimelineSeries) (float64, bool) {
	if s == nil || len(s.Points) == 0 {
		return 0, false
	}
	return s.Points[len(s.Points)-1].Value, true
}

func values(s *obs.TimelineSeries) []float64 {
	if s == nil {
		return nil
	}
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Value
	}
	return out
}

func renderServing(b *strings.Builder, tl *obs.Timeline) {
	qpsS := series(tl, "ns_serve_requests_total", "rate", nil)
	p50S := series(tl, "ns_serve_latency_seconds", "p50", nil)
	p99S := series(tl, "ns_serve_latency_seconds", "p99", nil)
	if qpsS == nil && p99S == nil {
		return
	}
	b.WriteString("serving\n")
	if qps, ok := last(qpsS); ok {
		fmt.Fprintf(b, "  qps   %8.1f  %s\n", qps, spark(values(qpsS), 32))
	}
	p50, ok50 := last(p50S)
	p99, ok99 := last(p99S)
	if ok50 || ok99 {
		fmt.Fprintf(b, "  p50 %8.2fms   p99 %8.2fms  %s\n", p50*1e3, p99*1e3, spark(values(p99S), 32))
	}
	if p99S != nil && len(p99S.Exemplars) > 0 {
		ex := p99S.Exemplars[0]
		fmt.Fprintf(b, "  worst trace %s (%.2fms)\n", ex.TraceID, ex.Value*1e3)
	}
	b.WriteString("\n")
}

func renderStages(b *strings.Builder, tl *obs.Timeline) {
	stages := []string{serve.StageQueue, serve.StageCache, serve.StageExtract, serve.StageCompute}
	type row struct {
		name     string
		p50, p99 float64
		ok       bool
	}
	rows := make([]row, 0, len(stages))
	var sum float64
	for _, stage := range stages {
		lbl := map[string]string{"stage": stage}
		p50, ok50 := last(series(tl, "ns_serve_stage_seconds", "p50", lbl))
		p99, _ := last(series(tl, "ns_serve_stage_seconds", "p99", lbl))
		rows = append(rows, row{stage, p50, p99, ok50})
		if ok50 {
			sum += p50
		}
	}
	if sum == 0 {
		return
	}
	b.WriteString("stages (windowed)\n")
	for _, r := range rows {
		if !r.ok {
			continue
		}
		share := r.p50 / sum
		fmt.Fprintf(b, "  %-7s p50 %8.2fms  p99 %8.2fms  %s %3.0f%%\n",
			r.name, r.p50*1e3, r.p99*1e3, bar(share, 16), 100*share)
	}
	b.WriteString("\n")
}

func renderCache(b *strings.Builder, tl *obs.Timeline, st *serve.Stats) {
	hits, okH := last(series(tl, "ns_serve_cache_hits_total", "rate", nil))
	misses, okM := last(series(tl, "ns_serve_cache_misses_total", "rate", nil))
	if !okH && !okM {
		return
	}
	b.WriteString("cache\n")
	if lookups := hits + misses; lookups > 0 {
		fmt.Fprintf(b, "  hit rate %5.1f%%  (%.1f hits/s, %.1f misses/s)\n",
			100*hits/lookups, hits, misses)
	} else {
		b.WriteString("  idle (no lookups in window)\n")
	}
	if bytes, ok := last(series(tl, "ns_serve_cache_bytes", "value", nil)); ok {
		line := fmt.Sprintf("  resident %s", sizeOf(bytes))
		if st != nil && st.Cache.BudgetBytes > 0 {
			line += fmt.Sprintf(" of %s budget (%s)",
				sizeOf(float64(st.Cache.BudgetBytes)), bar(bytes/float64(st.Cache.BudgetBytes), 16))
		}
		b.WriteString(line + "\n")
	}
	b.WriteString("\n")
}

func renderBatcher(b *strings.Builder, tl *obs.Timeline, st *serve.Stats) {
	depth, okD := last(series(tl, "ns_serve_batcher_queue_depth", "value", nil))
	full, _ := last(series(tl, "ns_serve_batcher_flushes_total", "rate", map[string]string{"reason": "max_batch"}))
	timed, _ := last(series(tl, "ns_serve_batcher_flushes_total", "rate", map[string]string{"reason": "max_wait"}))
	if !okD && full == 0 && timed == 0 {
		return
	}
	b.WriteString("batcher\n")
	fmt.Fprintf(b, "  queue depth %3.0f  flushes %.1f/s full, %.1f/s timed\n", depth, full, timed)
	if st != nil && st.Batches > 0 {
		fmt.Fprintf(b, "  lifetime: %d batches, %d batched requests\n", st.Batches, st.BatchedRequests)
	}
	b.WriteString("\n")
}

// renderWorkers summarises pool balance: each worker's busy-seconds counter
// rate is its utilisation; the straggler index (max/mean) says whether one
// worker is carrying the pool.
func renderWorkers(b *strings.Builder, tl *obs.Timeline) {
	pools := map[string][]float64{}
	for i := range tl.Series {
		s := &tl.Series[i]
		if s.Name != "ns_serve_worker_busy_seconds_total" || s.Stat != "rate" {
			continue
		}
		if v, ok := last(s); ok {
			pools[s.Labels["pool"]] = append(pools[s.Labels["pool"]], v)
		}
	}
	if len(pools) == 0 {
		return
	}
	b.WriteString("workers\n")
	names := make([]string, 0, len(pools))
	for name := range pools {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		utils := pools[name]
		var sum, max float64
		for _, u := range utils {
			sum += u
			if u > max {
				max = u
			}
		}
		mean := sum / float64(len(utils))
		straggler := 1.0
		if mean > 0 {
			straggler = max / mean
		}
		fmt.Fprintf(b, "  %-7s %d workers  util mean %5.1f%% max %5.1f%%  straggler %.2f\n",
			name, len(utils), 100*mean, 100*max, straggler)
	}
	b.WriteString("\n")
}

func renderAlerts(b *strings.Builder, hw *obs.HealthReport, err error) {
	if hw == nil {
		if err != nil {
			fmt.Fprintf(b, "healthwatch unavailable: %v\n", err)
		}
		return
	}
	if hw.Healthy {
		b.WriteString("health ok")
		if hw.LastEpoch >= 0 {
			fmt.Fprintf(b, "  (epoch %d, %.0fs ago)", hw.LastEpoch, hw.SinceLastSeconds)
		}
		b.WriteString("\n")
		return
	}
	fmt.Fprintf(b, "ALERTS (%d total)\n", len(hw.Alerts))
	from := len(hw.Alerts) - 3
	if from < 0 {
		from = 0
	}
	for _, a := range hw.Alerts[from:] {
		fmt.Fprintf(b, "  [%s] %s\n", a.Rule, a.Message)
	}
}

// spark renders xs as a unicode sparkline of at most width cells, newest
// last, scaled to the window maximum.
func spark(xs []float64, width int) string {
	if len(xs) == 0 {
		return ""
	}
	if len(xs) > width {
		xs = xs[len(xs)-width:]
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var max float64
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if max <= 0 || math.IsNaN(max) || math.IsInf(max, 0) {
		return strings.Repeat(string(levels[0]), len(xs))
	}
	var b strings.Builder
	for _, x := range xs {
		i := int(x / max * float64(len(levels)-1))
		if i < 0 {
			i = 0
		}
		if i >= len(levels) {
			i = len(levels) - 1
		}
		b.WriteRune(levels[i])
	}
	return b.String()
}

// bar renders a [0,1] fraction as a fixed-width block bar.
func bar(frac float64, width int) string {
	if math.IsNaN(frac) || frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	fill := int(frac*float64(width) + 0.5)
	return strings.Repeat("█", fill) + strings.Repeat("░", width-fill)
}

// sizeOf renders a byte count human-readably.
func sizeOf(bytes float64) string {
	switch {
	case bytes >= 1<<20:
		return fmt.Sprintf("%.1fMiB", bytes/(1<<20))
	case bytes >= 1<<10:
		return fmt.Sprintf("%.1fKiB", bytes/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", bytes)
	}
}
