// Command nsgen inspects the built-in synthetic datasets: it prints the
// Table 2 style registry listing, or detailed structural statistics for a
// single dataset.
//
// Usage:
//
//	nsgen -table2
//	nsgen -dataset reddit
package main

import (
	"flag"
	"fmt"
	"os"

	"neutronstar/internal/dataset"
	"neutronstar/internal/graph"
	"neutronstar/internal/obs"
	"neutronstar/internal/partition"
)

func main() {
	var (
		table2    = flag.Bool("table2", false, "print the dataset registry (paper Table 2)")
		dsName    = flag.String("dataset", "", "print detailed stats for one dataset")
		parts     = flag.Int("parts", 8, "partition count for cut statistics")
		exportDir = flag.String("export", "", "write the dataset (-dataset) to this directory")
		importDir = flag.String("import", "", "load and describe a dataset directory")
	)
	flag.Parse()
	log := obs.NewLogger(os.Stderr)
	fail := func(err error) {
		log.Error("fatal", "err", err)
		os.Exit(1)
	}

	switch {
	case *importDir != "":
		ds, err := dataset.LoadDir(*importDir)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s: %s\n", ds.Spec.Name, graph.ComputeStats(ds.Graph))
		fmt.Printf("features: %dx%d, classes: %d, train vertices: %d\n",
			ds.Features.Rows(), ds.Features.Cols(), ds.Spec.NumClasses, ds.TrainLabeledCount())
	case *table2:
		fmt.Println(dataset.Table2Header())
		for _, name := range append(dataset.BigGraphNames(), dataset.CitationNames()...) {
			ds, err := dataset.LoadByName(name)
			if err != nil {
				fail(err)
			}
			fmt.Println(dataset.Table2Row(ds))
		}
	case *dsName != "":
		ds, err := dataset.LoadByName(*dsName)
		if err != nil {
			fail(err)
		}
		if *exportDir != "" {
			if err := ds.Save(*exportDir); err != nil {
				fail(err)
			}
			fmt.Printf("exported %s to %s\n", *dsName, *exportDir)
			return
		}
		st := graph.ComputeStats(ds.Graph)
		fmt.Printf("%s: %s\n", *dsName, st)
		fmt.Printf("features: %dx%d, classes: %d, train/val/test: %d\n",
			ds.Features.Rows(), ds.Features.Cols(), ds.Spec.NumClasses, ds.TrainLabeledCount())
		for _, algo := range []partition.Algorithm{partition.Chunk, partition.Metis, partition.Fennel} {
			p, err := partition.New(algo, ds.Graph, *parts)
			if err != nil {
				fail(err)
			}
			q := partition.Evaluate(p, ds.Graph)
			fmt.Printf("%-7s %d parts: cut=%d (%.1f%%) imbalance=%.2f\n",
				algo, *parts, q.EdgeCut, 100*q.CutRatio, q.Imbalance)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
