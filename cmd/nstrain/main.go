// Command nstrain trains a GNN on a built-in dataset with a chosen engine
// and reports per-epoch loss, timing and final accuracy.
//
// Usage:
//
//	nstrain -dataset reddit -engine hybrid -model gcn -workers 8 -epochs 30
//
// With -debug-addr a live debug server exposes Prometheus metrics
// (/metrics), a JSON session snapshot (/status), a liveness probe
// (/healthz) and net/http/pprof while training runs:
//
//	nstrain -dataset reddit -epochs 100 -debug-addr :8080 &
//	curl localhost:8080/metrics
package main

import (
	"flag"
	"os"
	"strings"

	"neutronstar"
	"neutronstar/internal/obs"
)

func main() {
	var (
		dsName    = flag.String("dataset", "cora", "dataset name ("+strings.Join(neutronstar.DatasetNames(), ", ")+")")
		engName   = flag.String("engine", "hybrid", "engine: depcache, depcomm, hybrid")
		model     = flag.String("model", "gcn", "model: gcn, gin, gat")
		workers   = flag.Int("workers", 4, "simulated cluster size")
		epochs    = flag.Int("epochs", 30, "training epochs")
		network   = flag.String("network", "local", "network profile: local, ecs, ibv")
		lr        = flag.Float64("lr", 0.01, "learning rate")
		seed      = flag.Uint64("seed", 1, "random seed")
		opt       = flag.Bool("optimized", true, "enable ring/lock-free/overlap optimisations")
		trace     = flag.String("trace", "", "write a Chrome trace of worker activity to this file")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /status, /healthz and pprof on this address (e.g. :8080)")
		logJSON   = flag.Bool("log-json", false, "emit log lines as JSON instead of key=value text")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()

	log := obs.NewLogger(os.Stdout).WithJSON(*logJSON)
	log.SetLevel(obs.ParseLevel(*logLevel))
	fail := func(err error) {
		log.Error("fatal", "err", err)
		os.Exit(1)
	}

	ds, err := neutronstar.LoadDataset(*dsName)
	if err != nil {
		fail(err)
	}
	log.Info("dataset loaded", "dataset", ds.Name(),
		"vertices", ds.NumVertices(), "edges", ds.NumEdges())

	s, err := neutronstar.NewSession(ds, neutronstar.Config{
		Workers: *workers,
		Engine:  neutronstar.EngineKind(*engName),
		Model:   neutronstar.ModelKind(*model),
		Network: neutronstar.NetworkKind(*network),
		Ring:    *opt, LockFree: *opt, Overlap: *opt,
		LR:   *lr,
		Seed: *seed,
		// The debug server's /status busy fractions need the collector too.
		Metrics: *trace != "" || *debugAddr != "",
	})
	if err != nil {
		fail(err)
	}
	defer s.Close()

	if *debugAddr != "" {
		srv, err := obs.NewServer(*debugAddr, obs.Default(), func() any { return s.Status() })
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		log.Info("debug server listening", "addr", srv.Addr(),
			"endpoints", "/metrics /status /healthz /debug/pprof/")
	}

	cached, communicated := s.DependencySummary()
	for l := range cached {
		log.Info("dependency plan", "layer", l+1,
			"cached", cached[l], "communicated", communicated[l])
	}
	log.Info("planning done", "replica_kb", float64(s.CacheBytes())/1024,
		"planning_ms", s.PreprocessMillis())

	for i := 0; i < *epochs; i++ {
		ep := s.TrainEpoch()
		if ep.Epoch%5 == 0 || ep.Epoch == 1 || ep.Epoch == *epochs {
			log.Info("epoch done", "epoch", ep.Epoch, "loss", ep.Loss, "ms", ep.Millis)
		} else {
			log.Debug("epoch done", "epoch", ep.Epoch, "loss", ep.Loss, "ms", ep.Millis)
		}
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fail(err)
		}
		if err := s.Metrics().WriteChromeTrace(f); err != nil {
			fail(err)
		}
		f.Close()
		log.Info("trace written", "path", *trace)
	}
	log.Info("accuracy", "train", s.Accuracy(neutronstar.SplitTrain),
		"val", s.Accuracy(neutronstar.SplitVal),
		"test", s.Accuracy(neutronstar.SplitTest))
}
