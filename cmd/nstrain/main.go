// Command nstrain trains a GNN on a built-in dataset with a chosen engine
// and reports per-epoch loss, timing and final accuracy.
//
// Usage:
//
//	nstrain -dataset reddit -engine hybrid -model gcn -workers 8 -epochs 30
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"neutronstar"
)

func main() {
	var (
		dsName  = flag.String("dataset", "cora", "dataset name ("+strings.Join(neutronstar.DatasetNames(), ", ")+")")
		engName = flag.String("engine", "hybrid", "engine: depcache, depcomm, hybrid")
		model   = flag.String("model", "gcn", "model: gcn, gin, gat")
		workers = flag.Int("workers", 4, "simulated cluster size")
		epochs  = flag.Int("epochs", 30, "training epochs")
		network = flag.String("network", "local", "network profile: local, ecs, ibv")
		lr      = flag.Float64("lr", 0.01, "learning rate")
		seed    = flag.Uint64("seed", 1, "random seed")
		opt     = flag.Bool("optimized", true, "enable ring/lock-free/overlap optimisations")
		trace   = flag.String("trace", "", "write a Chrome trace of worker activity to this file")
	)
	flag.Parse()

	ds, err := neutronstar.LoadDataset(*dsName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("dataset %s: %d vertices, %d edges\n", ds.Name(), ds.NumVertices(), ds.NumEdges())

	s, err := neutronstar.NewSession(ds, neutronstar.Config{
		Workers: *workers,
		Engine:  neutronstar.EngineKind(*engName),
		Model:   neutronstar.ModelKind(*model),
		Network: neutronstar.NetworkKind(*network),
		Ring:    *opt, LockFree: *opt, Overlap: *opt,
		LR:      *lr,
		Seed:    *seed,
		Metrics: *trace != "",
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer s.Close()

	cached, communicated := s.DependencySummary()
	for l := range cached {
		fmt.Printf("layer %d dependencies: %d cached, %d communicated\n", l+1, cached[l], communicated[l])
	}
	fmt.Printf("replica storage: %.1f KB, planning time %.1f ms\n",
		float64(s.CacheBytes())/1024, s.PreprocessMillis())

	for _, ep := range s.Train(*epochs) {
		if ep.Epoch%5 == 0 || ep.Epoch == 1 || ep.Epoch == *epochs {
			fmt.Printf("epoch %3d  loss %.4f  (%.0f ms)\n", ep.Epoch, ep.Loss, ep.Millis)
		}
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := s.Metrics().WriteChromeTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("trace written to %s\n", *trace)
	}
	fmt.Printf("train accuracy: %.4f\n", s.Accuracy(neutronstar.SplitTrain))
	fmt.Printf("val accuracy:   %.4f\n", s.Accuracy(neutronstar.SplitVal))
	fmt.Printf("test accuracy:  %.4f\n", s.Accuracy(neutronstar.SplitTest))
}
