// Command nstrain trains a GNN on a built-in dataset with a chosen engine
// and reports per-epoch loss, timing and final accuracy.
//
// Usage:
//
//	nstrain -dataset reddit -engine hybrid -model gcn -workers 8 -epochs 30
//
// With -ckpt-dir the run snapshots its full training state (parameters,
// optimiser moments, RNG positions, loss history) every -ckpt-every epochs;
// -resume restarts from the newest snapshot in that directory:
//
//	nstrain -dataset reddit -epochs 50 -ckpt-dir /tmp/ckpt -ckpt-every 5
//	nstrain -dataset reddit -epochs 50 -ckpt-dir /tmp/ckpt -resume
//
// With -fault-spec every non-local message is subjected to deterministic
// drops, delays and duplicates, with retransmission keeping the run alive:
//
//	nstrain -dataset reddit -epochs 30 -fault-spec 'drop=0.05,jitter=1ms,seed=7'
//
// With -debug-addr a live debug server exposes Prometheus metrics
// (/metrics), a JSON session snapshot (/status), a liveness probe
// (/healthz) and net/http/pprof while training runs:
//
//	nstrain -dataset reddit -epochs 100 -debug-addr :8080 &
//	curl localhost:8080/metrics
//
// With -critpath every message carries a causal trace context and each epoch
// closes with a critical-path extraction; the run ends with a "why was this
// epoch slow" report, /critpath serves the per-epoch paths, and the Chrome
// trace (-trace) gains cross-worker message arrows. With -watch-rules an
// anomaly watchdog evaluates threshold rules over the epoch stream and
// serves its verdict on /healthwatch:
//
//	nstrain -dataset reddit -epochs 30 -critpath -watch-rules 'regress=1.5,straggler=3.0'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"neutronstar"
	"neutronstar/internal/engine"
	"neutronstar/internal/obs"
)

// engineNames lists the accepted -engine values, straight from the engine
// package's mode registry so the help text can never drift from the code.
func engineNames() []string { return engine.ModeNames() }

func main() {
	var (
		dsName    = flag.String("dataset", "cora", "dataset name ("+strings.Join(neutronstar.DatasetNames(), ", ")+")")
		engName   = flag.String("engine", "hybrid", "engine: "+strings.Join(engineNames(), ", "))
		model     = flag.String("model", "gcn", "model: gcn, gin, gat")
		workers   = flag.Int("workers", 4, "simulated cluster size")
		epochs    = flag.Int("epochs", 30, "training epochs")
		layers    = flag.Int("layers", 0, "propagation depth L (0 = the paper's default of 2)")
		network   = flag.String("network", "local", "network profile: local, ecs, ibv")
		lr        = flag.Float64("lr", 0.01, "learning rate")
		seed      = flag.Uint64("seed", 1, "random seed")
		opt       = flag.Bool("optimized", true, "enable ring/lock-free/overlap optimisations")
		repBudget = flag.Int64("rep-budget", 0, "per-worker compressed replica byte budget for deprep/hybrid4 (0 = unlimited)")
		repQuant  = flag.String("rep-quant", "off", "replica feature storage for deprep/hybrid4: off, fp16, int8")
		pool      = flag.Bool("pool", defaultPool(), "recycle tensor memory across epochs (default also settable via NS_POOL=0/1)")
		ckptDir   = flag.String("ckpt-dir", "", "checkpoint directory (empty disables checkpointing)")
		ckptEvery = flag.Int("ckpt-every", 5, "checkpoint cadence in epochs")
		resume    = flag.Bool("resume", false, "resume from the newest snapshot in -ckpt-dir")
		saveModel = flag.String("save-model", "", "write the trained model parameters to this file for nsserve (gob)")
		faultSpec = flag.String("fault-spec", "", "network fault injection, e.g. 'drop=0.05,jitter=1ms,seed=7'")
		trace     = flag.String("trace", "", "write a Chrome trace of worker activity to this file")
		critPath  = flag.Bool("critpath", false, "record causal traces and report each epoch's critical path and stragglers")
		watchSpec = flag.String("watch-rules", "", "anomaly watchdog rules, e.g. 'stall=30s,regress=1.5,straggler=3.0' or 'default'")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /status, /epochs, /critpath, /healthwatch, /timeline, /healthz and pprof on this address (e.g. :8080)")
		logJSON   = flag.Bool("log-json", false, "emit log lines as JSON instead of key=value text")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()
	if err := validateFlags(*dsName, *workers, *epochs, *layers, *ckptDir, *ckptEvery, *resume); err != nil {
		fmt.Fprintf(os.Stderr, "nstrain: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	// Malformed watch rules are a usage error: reject them before building
	// the cluster, with the parser's explanation of what a valid spec is.
	if _, err := obs.ParseWatchRules(*watchSpec); err != nil {
		fmt.Fprintf(os.Stderr, "nstrain: -watch-rules: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	log := obs.NewLogger(os.Stdout).WithJSON(*logJSON)
	log.SetLevel(obs.ParseLevel(*logLevel))
	fail := func(err error) {
		log.Error("fatal", "err", err)
		os.Exit(1)
	}

	ds, err := neutronstar.LoadDataset(*dsName)
	if err != nil {
		fail(err)
	}
	log.Info("dataset loaded", "dataset", ds.Name(),
		"vertices", ds.NumVertices(), "edges", ds.NumEdges())

	s, err := neutronstar.NewSession(ds, neutronstar.Config{
		Workers: *workers,
		Engine:  neutronstar.EngineKind(*engName),
		Model:   neutronstar.ModelKind(*model),
		Network: neutronstar.NetworkKind(*network),
		Layers:  *layers,
		Ring:    *opt, LockFree: *opt, Overlap: *opt,
		Pool:           *pool,
		LR:             *lr,
		Seed:           *seed,
		RepBudgetBytes: *repBudget,
		RepQuant:       *repQuant,
		CkptDir:        *ckptDir,
		CkptEvery:      *ckptEvery,
		FaultSpec:      *faultSpec,
		CritPath:       *critPath,
		WatchRules:     *watchSpec,
		// The debug server's /status busy fractions need the collector too.
		Metrics: *trace != "" || *debugAddr != "",
	})
	if err != nil {
		fail(err)
	}
	defer s.Close()
	s.Watchdog().SetLogger(log)

	if *faultSpec != "" {
		log.Info("fault injection active", "spec", *faultSpec)
	}

	startEpoch := 0
	if *resume {
		resumed, err := s.Resume()
		if err != nil {
			fail(err)
		}
		if resumed {
			hist := s.History()
			startEpoch = hist[len(hist)-1].Epoch
			log.Info("resumed from snapshot", "dir", *ckptDir,
				"epoch", startEpoch, "loss", hist[len(hist)-1].Loss)
		} else {
			log.Info("no snapshot to resume; starting fresh", "dir", *ckptDir)
		}
	}

	if *debugAddr != "" {
		obs.RegisterBuildInfo(obs.Default())
		// Periodic sampling keeps /timeline moving between epoch barriers
		// (long epochs would otherwise leave the dashboard flat).
		s.MetricHistory().Start(obs.DefaultHistoryStep)
		srv, err := obs.NewServer(*debugAddr, obs.Default(), obs.Endpoints{
			Status:      func() any { return s.Status() },
			Epochs:      func() any { return s.FlightTimeline() },
			CritPath:    func() any { return s.CritPathTimeline() },
			HealthWatch: func() any { return s.HealthWatch() },
			History:     s.MetricHistory(),
		})
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		log.Info("debug server listening", "addr", srv.Addr(),
			"endpoints", "/metrics /status /epochs /critpath /healthwatch /timeline /healthz /debug/pprof/")
	}

	cached, communicated := s.DependencySummary()
	for l := range cached {
		log.Info("dependency plan", "layer", l+1,
			"cached", cached[l], "communicated", communicated[l])
	}
	log.Info("planning done", "replica_kb", float64(s.CacheBytes())/1024,
		"planning_ms", s.PreprocessMillis())
	if rf := s.ReplicationFactor(); rf > 1 {
		log.Info("replication pass", "factor", rf, "quant", *repQuant)
	}

	for i := startEpoch; i < *epochs; i++ {
		ep := s.TrainEpoch()
		if ep.CkptErr != nil {
			log.Warn("checkpoint save failed", "epoch", ep.Epoch, "err", ep.CkptErr)
		}
		if ep.Epoch%5 == 0 || ep.Epoch == 1 || ep.Epoch == *epochs {
			log.Info("epoch done", "epoch", ep.Epoch, "loss", ep.Loss, "ms", ep.Millis)
		} else {
			log.Debug("epoch done", "epoch", ep.Epoch, "loss", ep.Loss, "ms", ep.Millis)
		}
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fail(err)
		}
		if err := s.Metrics().WriteChromeTrace(f); err != nil {
			fail(err)
		}
		f.Close()
		log.Info("trace written", "path", *trace)
	}
	// End-of-run flight report: where the epochs went (per stage), how large
	// the messages were, and how well the planner's cost model predicted it.
	for _, sb := range s.StageReport() {
		log.Info("stage", "name", sb.Stage, "sec_per_epoch", sb.Seconds,
			"bytes_per_epoch", sb.Bytes, "msgs_per_epoch", sb.Msgs)
	}
	msgBytes := obs.Default().Histogram("ns_comm_message_bytes",
		"Wire size of sent messages.", obs.SizeBuckets)
	if msgBytes.Count() > 0 {
		log.Info("message sizes", "count", msgBytes.Count(),
			"p50_bytes", msgBytes.Quantile(0.5), "p90_bytes", msgBytes.Quantile(0.9),
			"p99_bytes", msgBytes.Quantile(0.99))
	}
	for _, line := range s.CostSummary() {
		log.Info("cost model", "summary", line)
	}
	if *critPath {
		for _, line := range s.SlowEpochReport() {
			log.Info("slow epoch", "summary", line)
		}
	}
	log.Info("accuracy", "train", s.Accuracy(neutronstar.SplitTrain),
		"val", s.Accuracy(neutronstar.SplitVal),
		"test", s.Accuracy(neutronstar.SplitTest))
	if *saveModel != "" {
		f, err := os.Create(*saveModel)
		if err != nil {
			fail(err)
		}
		if err := s.SaveModel(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		log.Info("model saved", "path", *saveModel, "model", *model)
	}
}

// defaultPool reads the NS_POOL environment toggle: pooling is on unless
// NS_POOL is set to 0/false/off. The -pool flag overrides either way.
func defaultPool() bool {
	switch strings.ToLower(os.Getenv("NS_POOL")) {
	case "0", "false", "off", "no":
		return false
	}
	return true
}

// validateFlags rejects nonsensical flag combinations up front with a usage
// error, instead of letting them surface as a panic or confusing failure deep
// inside the engine.
func validateFlags(dataset string, workers, epochs, layers int, ckptDir string, ckptEvery int, resume bool) error {
	if strings.TrimSpace(dataset) == "" {
		return fmt.Errorf("-dataset must not be empty (available: %s)", strings.Join(neutronstar.DatasetNames(), ", "))
	}
	if workers <= 0 {
		return fmt.Errorf("-workers must be positive, got %d", workers)
	}
	if epochs <= 0 {
		return fmt.Errorf("-epochs must be positive, got %d", epochs)
	}
	if layers < 0 {
		return fmt.Errorf("-layers must be non-negative, got %d", layers)
	}
	if ckptEvery <= 0 {
		return fmt.Errorf("-ckpt-every must be positive, got %d", ckptEvery)
	}
	if resume && ckptDir == "" {
		return fmt.Errorf("-resume requires -ckpt-dir")
	}
	return nil
}
