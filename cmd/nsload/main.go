// Command nsload drives a seeded request mix against a running nsserve
// instance and reports latency percentiles, throughput and cache
// effectiveness. It can run closed-loop (fixed concurrency, the next request
// fires when one completes) or open-loop (fixed arrival rate, independent of
// completions), and can write its results as the serving block of a
// schema-versioned bench document for benchdiff gating.
//
//	nsserve -dataset cora -model gcn -train 30 -addr :8090 &
//	nsload -addr localhost:8090 -requests 500 -concurrency 8
//	nsload -addr localhost:8090 -rate 200 -duration 5s
//
// For CI gating, merge the serving block into an existing bench document and
// fail on absolute floors:
//
//	nsload -addr localhost:8090 -requests 400 -seed 7 \
//	  -bench-out BENCH.json -merge BENCH_baseline.json \
//	  -min-qps 20 -max-p99-ms 500 -min-cache-hits 1
//
// The request mix is deterministic in -seed: request i derives its own RNG
// from seed and i, so two runs with the same flags issue byte-identical
// request bodies in some order.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neutronstar/internal/bench"
	"neutronstar/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:8090", "nsserve address (host:port)")
		requests    = flag.Int("requests", 400, "total requests to send")
		duration    = flag.Duration("duration", 0, "stop after this long even if -requests remain (0 = no limit)")
		concurrency = flag.Int("concurrency", 4, "closed-loop worker count")
		rate        = flag.Float64("rate", 0, "open-loop arrival rate in requests/sec (0 = closed loop)")
		vertsPerReq = flag.Int("verts", 4, "queried vertices per request")
		mixSpec     = flag.String("mix", "predict=0.8,embed=0.1,linkscore=0.1", "request mix as endpoint=weight pairs")
		fanoutSpec  = flag.String("fanouts", "", "comma-separated per-layer fanouts for sampled queries (empty = exact)")
		seed        = flag.Uint64("seed", 1, "seed pinning the request mix")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request HTTP timeout")

		benchOut     = flag.String("bench-out", "", "write a bench document with the serving summary to this file")
		mergeFrom    = flag.String("merge", "", "read this bench document and carry its runs into -bench-out")
		minQPS       = flag.Float64("min-qps", 0, "exit 1 if measured QPS falls below this")
		maxP99Ms     = flag.Float64("max-p99-ms", 0, "exit 1 if p99 latency exceeds this many ms (0 = no gate)")
		minCacheHits = flag.Int64("min-cache-hits", -1, "exit 1 if the server's cache hit delta is below this (-1 = no gate)")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "nsload: %v\n", err)
		os.Exit(1)
	}

	mix, err := parseMix(*mixSpec)
	if err != nil {
		fail(err)
	}
	fanouts, err := parseFanouts(*fanoutSpec)
	if err != nil {
		fail(err)
	}
	if *requests <= 0 {
		fail(fmt.Errorf("-requests must be positive, got %d", *requests))
	}
	if *vertsPerReq <= 0 {
		fail(fmt.Errorf("-verts must be positive, got %d", *vertsPerReq))
	}
	if *rate < 0 {
		fail(fmt.Errorf("-rate must be non-negative, got %g", *rate))
	}
	if *rate == 0 && *concurrency <= 0 {
		fail(fmt.Errorf("-concurrency must be positive, got %d", *concurrency))
	}

	base := "http://" + *addr
	client := &http.Client{Timeout: *timeout}
	before, err := fetchStats(client, base)
	if err != nil {
		fail(fmt.Errorf("is nsserve running at %s? %w", *addr, err))
	}
	if fanouts != nil && len(fanouts) != before.Layers {
		fail(fmt.Errorf("-fanouts has %d entries but the served model has %d layers", len(fanouts), before.Layers))
	}

	gen := &reqGen{
		n:       before.NumVertices,
		verts:   *vertsPerReq,
		mix:     mix,
		fanouts: fanouts,
		seed:    *seed,
	}
	var lats []float64 // milliseconds, successes only
	var errs int64
	stageMS := make(map[string][]float64) // per-stage ms from Server-Timing
	var mu sync.Mutex
	record := func(ms float64, ok bool, timing map[string]time.Duration) {
		mu.Lock()
		if ok {
			lats = append(lats, ms)
			for stage, d := range timing {
				stageMS[stage] = append(stageMS[stage], float64(d)/float64(time.Millisecond))
			}
		} else {
			errs++
		}
		mu.Unlock()
	}
	shoot := func(i int) {
		path, body := gen.request(i)
		t0 := time.Now()
		hdr, ok := post(client, base+path, body)
		ms := float64(time.Since(t0).Nanoseconds()) / 1e6
		var timing map[string]time.Duration
		if ok {
			if st := hdr.Get("Server-Timing"); st != "" {
				timing = serve.ParseServerTiming(st)
			}
		}
		record(ms, ok, timing)
	}

	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	expired := func() bool { return !deadline.IsZero() && time.Now().After(deadline) }

	mode := "closed"
	start := time.Now()
	if *rate > 0 {
		mode = "open"
		interval := time.Duration(float64(time.Second) / *rate)
		var wg sync.WaitGroup
		tick := time.NewTicker(interval)
		for i := 0; i < *requests && !expired(); i++ {
			<-tick.C
			wg.Add(1)
			go func(i int) { defer wg.Done(); shoot(i) }(i)
		}
		tick.Stop()
		wg.Wait()
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(*requests) || expired() {
						return
					}
					shoot(int(i))
				}
			}()
		}
		wg.Wait()
	}
	elapsed := time.Since(start)

	after, err := fetchStats(client, base)
	if err != nil {
		fail(err)
	}
	hits := after.Cache.Hits - before.Cache.Hits
	misses := after.Cache.Misses - before.Cache.Misses

	sent := int64(len(lats)) + errs
	if len(lats) == 0 {
		fail(fmt.Errorf("all %d requests failed", sent))
	}
	sort.Float64s(lats)
	sum := 0.0
	for _, l := range lats {
		sum += l
	}
	summary := &bench.ServingSummary{
		Mode:            mode,
		Requests:        sent,
		Errors:          errs,
		VertsPerReq:     *vertsPerReq,
		Seed:            *seed,
		DurationSeconds: elapsed.Seconds(),
		QPS:             float64(len(lats)) / elapsed.Seconds(),
		P50LatencyMs:    percentile(lats, 0.50),
		P99LatencyMs:    percentile(lats, 0.99),
		MeanLatencyMs:   sum / float64(len(lats)),
		CacheHits:       hits,
		CacheMisses:     misses,
	}
	if mode == "open" {
		summary.RateQPS = *rate
	} else {
		summary.Concurrency = *concurrency
	}
	summary.Stages, summary.StageCoverage = stageSummary(stageMS, summary.MeanLatencyMs)

	fmt.Printf("mode=%s requests=%d errors=%d elapsed=%.2fs qps=%.1f\n",
		mode, sent, errs, elapsed.Seconds(), summary.QPS)
	fmt.Printf("latency_ms p50=%.3f p99=%.3f mean=%.3f\n",
		summary.P50LatencyMs, summary.P99LatencyMs, summary.MeanLatencyMs)
	for _, stage := range []string{serve.StageQueue, serve.StageCache, serve.StageExtract, serve.StageCompute} {
		if q, ok := summary.Stages[stage]; ok {
			fmt.Printf("stage %-7s p50=%.3f p99=%.3f mean=%.3f ms\n", stage, q.P50Ms, q.P99Ms, q.MeanMs)
		}
	}
	if summary.StageCoverage > 0 {
		fmt.Printf("stage sum covers %.0f%% of server pipeline latency", 100*summary.StageCoverage)
		if t, ok := summary.Stages[serve.StageTotal]; ok && summary.MeanLatencyMs > 0 {
			fmt.Printf(" (pipeline is %.0f%% of client latency; rest is HTTP)",
				100*t.MeanMs/summary.MeanLatencyMs)
		}
		fmt.Println()
	}
	fmt.Printf("cache hits=%d misses=%d (delta over this window)\n", hits, misses)

	if *benchOut != "" {
		doc := &bench.Doc{
			SchemaVersion: bench.SchemaVersion,
			Graph: bench.GraphInfo{Name: "served", Vertices: before.NumVertices,
				Classes: before.Classes, Layers: before.Layers},
			Host: bench.CurrentHost(),
		}
		if *mergeFrom != "" {
			doc, err = bench.ReadFile(*mergeFrom)
			if err != nil {
				fail(fmt.Errorf("-merge: %w", err))
			}
			doc.SchemaVersion = bench.SchemaVersion
		}
		doc.Serving = summary
		if err := doc.WriteFile(*benchOut); err != nil {
			fail(err)
		}
		fmt.Printf("bench document written to %s\n", *benchOut)
	}

	// Absolute gates for CI smoke jobs: these catch a broken serving path
	// (zero throughput, pathological tail, cold cache) without needing a
	// baseline document.
	bad := false
	if *minQPS > 0 && summary.QPS < *minQPS {
		fmt.Fprintf(os.Stderr, "nsload: GATE qps %.1f < min %.1f\n", summary.QPS, *minQPS)
		bad = true
	}
	if *maxP99Ms > 0 && summary.P99LatencyMs > *maxP99Ms {
		fmt.Fprintf(os.Stderr, "nsload: GATE p99 %.3fms > max %.3fms\n", summary.P99LatencyMs, *maxP99Ms)
		bad = true
	}
	if *minCacheHits >= 0 && hits < *minCacheHits {
		fmt.Fprintf(os.Stderr, "nsload: GATE cache hits %d < min %d\n", hits, *minCacheHits)
		bad = true
	}
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "nsload: GATE %d request errors\n", errs)
		bad = true
	}
	if bad {
		os.Exit(1)
	}
}

// reqGen builds the i-th request of the deterministic mix. Each request
// derives a private RNG from (seed, i) so the mix does not depend on the
// interleaving of concurrent workers.
type reqGen struct {
	n       int
	verts   int
	mix     []mixEntry
	fanouts []int
	seed    uint64
}

type mixEntry struct {
	endpoint string
	cum      float64 // cumulative weight in (0,1]
}

func (g *reqGen) request(i int) (path string, body []byte) {
	rng := rand.New(rand.NewSource(int64(g.seed ^ uint64(i)*0x9E3779B97F4A7C15)))
	endpoint := g.mix[len(g.mix)-1].endpoint
	p := rng.Float64()
	for _, m := range g.mix {
		if p < m.cum {
			endpoint = m.endpoint
			break
		}
	}
	pick := func() int32 { return int32(rng.Intn(g.n)) }
	switch endpoint {
	case "linkscore":
		npairs := (g.verts + 1) / 2
		req := struct {
			Pairs   [][2]int32 `json:"pairs"`
			Fanouts []int      `json:"fanouts,omitempty"`
			Seed    uint64     `json:"seed,omitempty"`
		}{Fanouts: g.fanouts, Seed: g.seed + uint64(i)}
		for k := 0; k < npairs; k++ {
			req.Pairs = append(req.Pairs, [2]int32{pick(), pick()})
		}
		body, _ = json.Marshal(req)
	default: // predict, embed
		req := struct {
			Verts   []int32 `json:"vertices"`
			Fanouts []int   `json:"fanouts,omitempty"`
			Seed    uint64  `json:"seed,omitempty"`
		}{Fanouts: g.fanouts, Seed: g.seed + uint64(i)}
		seen := make(map[int32]bool, g.verts)
		for len(req.Verts) < g.verts {
			v := pick()
			if !seen[v] {
				seen[v] = true
				req.Verts = append(req.Verts, v)
			}
			if len(seen) >= g.n {
				break
			}
		}
		body, _ = json.Marshal(req)
	}
	return "/" + endpoint, body
}

func parseMix(spec string) ([]mixEntry, error) {
	valid := map[string]bool{"predict": true, "embed": true, "linkscore": true}
	var entries []mixEntry
	total := 0.0
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-mix: %q is not endpoint=weight", part)
		}
		if !valid[k] {
			return nil, fmt.Errorf("-mix: unknown endpoint %q (want predict, embed, linkscore)", k)
		}
		w, err := strconv.ParseFloat(v, 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("-mix: bad weight %q for %s", v, k)
		}
		if w == 0 {
			continue
		}
		total += w
		entries = append(entries, mixEntry{endpoint: k, cum: total})
	}
	if len(entries) == 0 || total <= 0 {
		return nil, fmt.Errorf("-mix: no endpoints with positive weight in %q", spec)
	}
	for i := range entries {
		entries[i].cum /= total
	}
	entries[len(entries)-1].cum = 1
	return entries, nil
}

func parseFanouts(spec string) ([]int, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []int
	for _, s := range strings.Split(spec, ",") {
		f, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("-fanouts: bad entry %q", s)
		}
		out = append(out, f)
	}
	return out, nil
}

func fetchStats(client *http.Client, base string) (*serve.Stats, error) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/stats returned %s", resp.Status)
	}
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("decoding /stats: %w", err)
	}
	if st.NumVertices <= 0 {
		return nil, fmt.Errorf("/stats reports %d vertices", st.NumVertices)
	}
	return &st, nil
}

func post(client *http.Client, url string, body []byte) (http.Header, bool) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.Header, resp.StatusCode == http.StatusOK
}

// stageSummary folds the per-request Server-Timing samples into per-stage
// quantiles and computes the coverage ratio: the sum of the four additive
// stage means over the server's mean end-to-end pipeline latency (the
// "total" header entry; the stages partition it, so coverage should sit at
// ~1.0). When no total was reported the mean client-observed latency stands
// in, which additionally counts HTTP overhead.
func stageSummary(stageMS map[string][]float64, meanClientMs float64) (map[string]bench.StageQuantiles, float64) {
	if len(stageMS) == 0 {
		return nil, 0
	}
	out := make(map[string]bench.StageQuantiles, len(stageMS))
	var stageMeanSum float64
	for stage, xs := range stageMS {
		sort.Float64s(xs)
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(len(xs))
		out[stage] = bench.StageQuantiles{
			P50Ms:  percentile(xs, 0.50),
			P99Ms:  percentile(xs, 0.99),
			MeanMs: mean,
		}
		if stage != serve.StageTotal {
			stageMeanSum += mean
		}
	}
	basis := meanClientMs
	if t, ok := out[serve.StageTotal]; ok && t.MeanMs > 0 {
		basis = t.MeanMs
	}
	var coverage float64
	if basis > 0 {
		coverage = stageMeanSum / basis
	}
	return out, coverage
}

// percentile returns the p-quantile of sorted xs by nearest-rank.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
