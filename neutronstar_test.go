package neutronstar

import (
	"bytes"
	"testing"
)

func TestLoadDatasetAndTrain(t *testing.T) {
	ds, err := LoadDataset("cora")
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumVertices() != 2700 || ds.Name() != "cora" {
		t.Fatalf("cora = %d vertices, name %q", ds.NumVertices(), ds.Name())
	}
	s, err := NewSession(ds, Config{Workers: 2, Engine: EngineHybrid, Model: ModelGCN, Seed: 1, LR: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res := s.Train(15)
	if len(res) != 15 {
		t.Fatalf("results = %d", len(res))
	}
	if res[14].Loss >= res[0].Loss {
		t.Fatalf("loss %v -> %v", res[0].Loss, res[14].Loss)
	}
	if res[0].Millis <= 0 || res[0].Epoch != 1 {
		t.Fatalf("bad epoch result %+v", res[0])
	}
	if acc := s.Accuracy(SplitTest); acc < 0.3 {
		t.Fatalf("test accuracy %v unexpectedly low", acc)
	}
}

func TestLoadDatasetUnknown(t *testing.T) {
	if _, err := LoadDataset("nope"); err == nil {
		t.Fatal("expected error")
	}
	if len(DatasetNames()) != 10 {
		t.Fatalf("names = %v", DatasetNames())
	}
}

func TestCustomDataset(t *testing.T) {
	// Two triangles, one per class, homophilous features.
	edges := [][2]int{
		{0, 1}, {1, 2}, {2, 0},
		{3, 4}, {4, 5}, {5, 3},
		{0, 3}, // one cross edge
	}
	features := make([][]float32, 6)
	labels := make([]int, 6)
	for v := range features {
		c := v / 3
		labels[v] = c
		features[v] = []float32{float32(2*c - 1), float32(v)}
	}
	ds, err := NewDataset(6, edges, features, labels, 2, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumVertices() != 6 || ds.NumEdges() != 7 {
		t.Fatalf("custom ds %d/%d", ds.NumVertices(), ds.NumEdges())
	}
	s, err := NewSession(ds, Config{Workers: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r := s.TrainEpoch()
	if r.Epoch != 1 {
		t.Fatal("epoch not run")
	}
}

func TestCustomDatasetValidation(t *testing.T) {
	if _, err := NewDataset(2, nil, [][]float32{{1}}, []int{0, 0}, 1, 4, 1); err == nil {
		t.Fatal("expected feature-count error")
	}
	if _, err := NewDataset(1, nil, [][]float32{{1}}, []int{5}, 2, 4, 1); err == nil {
		t.Fatal("expected label-range error")
	}
	if _, err := NewDataset(2, [][2]int{{0, 9}}, [][]float32{{1}, {1}}, []int{0, 0}, 1, 4, 1); err == nil {
		t.Fatal("expected edge-range error")
	}
	if _, err := NewDataset(0, nil, nil, nil, 1, 4, 1); err == nil {
		t.Fatal("expected empty-dataset error")
	}
}

func TestConfigValidation(t *testing.T) {
	ds, _ := LoadDataset("cora")
	for _, cfg := range []Config{
		{Engine: "warp"},
		{Model: "transformer"},
		{Network: "wifi"},
	} {
		if _, err := NewSession(ds, cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

func TestEnginesAgreeViaFacade(t *testing.T) {
	ds, _ := LoadDataset("citeseer")
	losses := map[EngineKind]float64{}
	for _, ek := range []EngineKind{EngineDepCache, EngineDepComm, EngineHybrid} {
		s, err := NewSession(ds, Config{Workers: 3, Engine: ek, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		losses[ek] = s.Train(2)[1].Loss
		s.Close()
	}
	for ek, l := range losses {
		diff := l - losses[EngineHybrid]
		if diff < -1e-3 || diff > 1e-3 {
			t.Fatalf("%s loss %v deviates from hybrid %v", ek, l, losses[EngineHybrid])
		}
	}
}

func TestDependencySummaryAndCacheBytes(t *testing.T) {
	ds, _ := LoadDataset("cora")
	s, err := NewSession(ds, Config{Workers: 4, Engine: EngineDepCache, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cached, communicated := s.DependencySummary()
	if len(cached) != 2 {
		t.Fatalf("layers = %d", len(cached))
	}
	for l := range communicated {
		if communicated[l] != 0 {
			t.Fatal("DepCache communicated dependencies")
		}
	}
	if cached[0] == 0 || s.CacheBytes() == 0 {
		t.Fatal("DepCache cached nothing")
	}
	if s.PreprocessMillis() < 0 {
		t.Fatal("negative preprocess time")
	}
}

func TestMetricsEnabled(t *testing.T) {
	ds, _ := LoadDataset("cora")
	s, err := NewSession(ds, Config{Workers: 2, Metrics: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.TrainEpoch()
	if s.Metrics() == nil || s.Metrics().Busy(0) == 0 {
		t.Fatal("metrics not collected")
	}
	s2, _ := NewSession(ds, Config{Workers: 2, Seed: 4})
	defer s2.Close()
	if s2.Metrics() != nil {
		t.Fatal("metrics collected when disabled")
	}
}

func TestSessionCheckpointRoundTrip(t *testing.T) {
	ds, _ := LoadDataset("cora")
	s, err := NewSession(ds, Config{Workers: 2, Model: ModelSAGE, Seed: 6, LR: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	s.Train(10)
	accTrained := s.Accuracy(SplitTest)
	var buf bytes.Buffer
	if err := s.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// A fresh session with a different seed starts worse; loading the
	// checkpoint restores the trained accuracy exactly.
	s2, err := NewSession(ds, Config{Workers: 3, Model: ModelSAGE, Seed: 999})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.LoadModel(&buf); err != nil {
		t.Fatal(err)
	}
	if acc := s2.Accuracy(SplitTest); acc != accTrained {
		t.Fatalf("restored accuracy %v != trained %v", acc, accTrained)
	}
	// Training must continue cleanly after a load (replicas stayed in sync).
	r := s2.TrainEpoch()
	if r.Loss <= 0 {
		t.Fatal("no loss after restore")
	}
}

func TestSAGEViaFacade(t *testing.T) {
	ds, _ := LoadDataset("citeseer")
	s, err := NewSession(ds, Config{Workers: 2, Model: ModelSAGE, Seed: 8, LR: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res := s.Train(10)
	if res[9].Loss >= res[0].Loss {
		t.Fatalf("SAGE did not learn: %v -> %v", res[0].Loss, res[9].Loss)
	}
}

func TestDeepModelViaFacade(t *testing.T) {
	ds, _ := LoadDataset("cora")
	s, err := NewSession(ds, Config{Workers: 2, Layers: 3, HiddenDim: 12, Seed: 31, LR: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res := s.Train(10)
	if res[9].Loss >= res[0].Loss {
		t.Fatalf("3-layer model did not learn: %v -> %v", res[0].Loss, res[9].Loss)
	}
	cached, _ := s.DependencySummary()
	if len(cached) != 3 {
		t.Fatalf("dependency summary has %d layers, want 3", len(cached))
	}
}

func TestScheduleViaFacade(t *testing.T) {
	ds, _ := LoadDataset("cora")
	s, err := NewSession(ds, Config{
		Workers: 2, Seed: 41, LR: 0.05, ClipNorm: 5,
		Schedule: LRSchedule{Kind: "cosine", MinLR: 0.001, Span: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res := s.Train(10)
	if res[9].Loss >= res[0].Loss {
		t.Fatalf("scheduled facade training failed: %v -> %v", res[0].Loss, res[9].Loss)
	}
	if _, err := NewSession(ds, Config{Schedule: LRSchedule{Kind: "exponential"}}); err == nil {
		t.Fatal("expected unknown-schedule error")
	}
}

func TestTCPViaFacade(t *testing.T) {
	ds, _ := LoadDataset("citeseer")
	s, err := NewSession(ds, Config{Workers: 3, TCP: true, Seed: 51, LR: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res := s.Train(6)
	if res[5].Loss >= res[0].Loss {
		t.Fatalf("TCP session did not learn: %v -> %v", res[0].Loss, res[5].Loss)
	}
}

func TestDatasetDirRoundTripViaFacade(t *testing.T) {
	ds, _ := LoadDataset("citeseer")
	dir := t.TempDir()
	if err := SaveDataset(ds, dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDatasetDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != ds.NumVertices() || got.NumEdges() != ds.NumEdges() {
		t.Fatal("round trip changed the dataset")
	}
	// The loaded dataset must be trainable.
	s, err := NewSession(got, Config{Workers: 2, Seed: 61, LR: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if r := s.Train(4); r[3].Loss >= r[0].Loss {
		t.Fatalf("loaded dataset did not train: %v -> %v", r[0].Loss, r[3].Loss)
	}
}
