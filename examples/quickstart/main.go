// Quickstart: load a built-in dataset, train a 2-layer GCN with the Hybrid
// engine on a 4-worker simulated cluster, and report accuracy.
package main

import (
	"fmt"
	"log"

	"neutronstar"
)

func main() {
	ds, err := neutronstar.LoadDataset("cora")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %d vertices, %d edges\n", ds.Name(), ds.NumVertices(), ds.NumEdges())

	s, err := neutronstar.NewSession(ds, neutronstar.Config{
		Workers: 4,
		Engine:  neutronstar.EngineHybrid,
		Model:   neutronstar.ModelGCN,
		Ring:    true, LockFree: true, Overlap: true,
		LR:   0.02,
		Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	for _, ep := range s.Train(20) {
		if ep.Epoch%5 == 0 || ep.Epoch == 1 {
			fmt.Printf("epoch %2d  loss %.4f  %.0f ms\n", ep.Epoch, ep.Loss, ep.Millis)
		}
	}
	fmt.Printf("test accuracy: %.2f%%\n", 100*s.Accuracy(neutronstar.SplitTest))
}
