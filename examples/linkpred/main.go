// Link prediction: the second canonical GNN task. A GCN encoder produces
// vertex embeddings; a dot-product decoder scores candidate edges; training
// minimises binary cross-entropy over observed edges (positives) and random
// non-edges (negatives). Demonstrates composing the library's autograd and
// layer primitives for a task the classification-oriented Session API does
// not cover, and reports ROC-AUC on held-out edges.
package main

import (
	"fmt"
	"sort"

	"neutronstar/internal/autograd"
	"neutronstar/internal/dataset"
	"neutronstar/internal/graph"
	"neutronstar/internal/nn"
	"neutronstar/internal/tensor"
)

func main() {
	spec := dataset.MustGet("cora")
	ds := dataset.Load(spec)
	fmt.Printf("link prediction on %s: %d vertices, %d edges\n",
		spec.Name, ds.NumVertices(), ds.NumEdges())

	// Split edges: 90% for message passing + training positives, 10% held
	// out for evaluation.
	rng := tensor.NewRNG(7)
	all := ds.Graph.Edges()
	perm := rng.Perm(len(all))
	nTest := len(all) / 10
	testEdges := make([]graph.Edge, 0, nTest)
	trainEdges := make([]graph.Edge, 0, len(all)-nTest)
	for i, p := range perm {
		if i < nTest {
			testEdges = append(testEdges, all[p])
		} else {
			trainEdges = append(trainEdges, all[p])
		}
	}
	g := graph.MustFromEdges(ds.NumVertices(), trainEdges)

	// Encoder: 2-layer GCN to 16-dim embeddings.
	const embDim = 16
	encoder := nn.MustNewModel(nn.GCN, []int{spec.FeatureDim, 32, embDim}, 0, 21)
	opt := nn.NewAdam(0.01)

	srcIdx, dstIdx, offsets, selfIdx := fullGraphIndex(g)
	edgeNorm, selfNorm := graph.GCNNormCoefficients(g)

	const epochs = 40
	for epoch := 1; epoch <= epochs; epoch++ {
		// Encode on a per-layer tape chain.
		type run struct {
			tape *autograd.Tape
			in   *autograd.Variable
			out  *autograd.Variable
		}
		var runs []run
		h := ds.Features
		for li, layer := range encoder.Layers {
			tape := autograd.NewTape()
			in := tape.Leaf(h, li > 0, "h")
			ctx := &nn.ForwardCtx{
				Tape: tape, EdgeSrc: tape.Gather(in, srcIdx), Self: tape.Gather(in, selfIdx),
				Offsets: offsets, EdgeDst: dstIdx, EdgeNorm: edgeNorm, SelfNorm: selfNorm,
				Training: true, RNG: rng,
			}
			out := layer.Forward(ctx)
			runs = append(runs, run{tape: tape, in: in, out: out})
			h = out.Value
		}
		emb := runs[len(runs)-1]

		// Decoder batch: all training positives + an equal number of random
		// negatives, scored by embedding dot products on the last tape.
		batch := len(trainEdges)
		us := make([]int32, 0, 2*batch)
		vs := make([]int32, 0, 2*batch)
		targets := make([]float32, 0, 2*batch)
		for _, e := range trainEdges {
			us = append(us, e.Src)
			vs = append(vs, e.Dst)
			targets = append(targets, 1)
		}
		for i := 0; i < batch; i++ {
			u := int32(rng.Intn(ds.NumVertices()))
			v := int32(rng.Intn(ds.NumVertices()))
			us = append(us, u)
			vs = append(vs, v)
			targets = append(targets, 0)
		}
		tape := emb.tape
		scores := tape.RowSum(tape.Mul(tape.Gather(emb.out, us), tape.Gather(emb.out, vs)))
		loss := tape.BCEWithLogitsLoss(scores, targets)
		tape.Backward(loss, nil)
		for l := len(runs) - 2; l >= 0; l-- {
			seed := runs[l+1].in.Grad
			if seed == nil {
				seed = tensor.New(runs[l].out.Value.Rows(), runs[l].out.Value.Cols())
			}
			runs[l].tape.Backward(runs[l].out, seed)
		}
		for _, p := range encoder.Params() {
			p.CollectGrad()
		}
		opt.Step(encoder.Params())
		nn.ZeroGrads(encoder.Params())

		if epoch%10 == 0 || epoch == 1 {
			auc := evaluateAUC(g, encoder, ds.Features, testEdges, rng)
			fmt.Printf("epoch %3d  loss %.4f  held-out AUC %.4f\n",
				epoch, loss.Value.At(0, 0), auc)
		}
	}
}

// fullGraphIndex builds CSC index arrays for a whole graph.
func fullGraphIndex(g *graph.Graph) (srcIdx, dstIdx []int32, offsets, selfIdx []int32) {
	n := g.NumVertices()
	offsets = make([]int32, n+1)
	selfIdx = make([]int32, n)
	for v := 0; v < n; v++ {
		selfIdx[v] = int32(v)
		for _, u := range g.InNeighbors(int32(v)) {
			srcIdx = append(srcIdx, u)
			dstIdx = append(dstIdx, int32(v))
		}
		offsets[v+1] = int32(len(srcIdx))
	}
	return srcIdx, dstIdx, offsets, selfIdx
}

// evaluateAUC computes ROC-AUC of held-out positive edges against an equal
// number of random negatives, using inference-mode embeddings.
func evaluateAUC(g *graph.Graph, encoder *nn.Model, features *tensor.Tensor,
	positives []graph.Edge, rng *tensor.RNG) float64 {

	srcIdx, dstIdx, offsets, selfIdx := fullGraphIndex(g)
	edgeNorm, selfNorm := graph.GCNNormCoefficients(g)
	h := features
	for _, layer := range encoder.Layers {
		tape := autograd.NewTape()
		in := tape.Constant(h, "h")
		ctx := &nn.ForwardCtx{
			Tape: tape, EdgeSrc: tape.Gather(in, srcIdx), Self: tape.Gather(in, selfIdx),
			Offsets: offsets, EdgeDst: dstIdx, EdgeNorm: edgeNorm, SelfNorm: selfNorm,
		}
		h = layer.Forward(ctx).Value
		for _, p := range layer.Params() {
			p.CollectGrad() // unbind inference tape
		}
	}
	type scored struct {
		score float64
		label int
	}
	var all []scored
	dot := func(u, v int32) float64 {
		return float64(tensor.Dot(h.Row(int(u)), h.Row(int(v))))
	}
	for _, e := range positives {
		all = append(all, scored{score: dot(e.Src, e.Dst), label: 1})
		all = append(all, scored{
			score: dot(int32(rng.Intn(h.Rows())), int32(rng.Intn(h.Rows()))), label: 0})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].score < all[j].score })
	// AUC via rank statistic.
	var rankSum float64
	nPos, nNeg := 0, 0
	for rank, s := range all {
		if s.label == 1 {
			rankSum += float64(rank + 1)
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0
	}
	return (rankSum - float64(nPos)*float64(nPos+1)/2) / (float64(nPos) * float64(nNeg))
}
