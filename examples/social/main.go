// Social-network scenario: the workload the paper's introduction motivates —
// classifying users of a large social graph (a Pokec-scale synthetic) with
// full-graph distributed training. The example compares all three dependency
// engines on the throttled "ECS" network and shows where Hybrid's advantage
// comes from, including the utilisation profile of each engine.
package main

import (
	"fmt"
	"log"

	"neutronstar"
	"neutronstar/internal/metrics"
)

func main() {
	ds, err := neutronstar.LoadDataset("pokec")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph %s: %d users, %d follow edges\n\n",
		ds.Name(), ds.NumVertices(), ds.NumEdges())

	const epochs = 3
	for _, engineKind := range []neutronstar.EngineKind{
		neutronstar.EngineDepCache,
		neutronstar.EngineDepComm,
		neutronstar.EngineHybrid,
	} {
		s, err := neutronstar.NewSession(ds, neutronstar.Config{
			Workers: 8,
			Engine:  engineKind,
			Model:   neutronstar.ModelGCN,
			Network: neutronstar.NetworkECS,
			Ring:    true, LockFree: true, Overlap: true,
			Seed:    7,
			Metrics: true,
		})
		if err != nil {
			log.Fatal(err)
		}

		var totalMs float64
		var lastLoss float64
		s.TrainEpoch() // warmup
		for _, ep := range s.Train(epochs) {
			totalMs += ep.Millis
			lastLoss = ep.Loss
		}
		cached, communicated := s.DependencySummary()
		coll := s.Metrics()
		fmt.Printf("%-9s  %6.0f ms/epoch  loss %.3f  replicas %6.1f MB  sent %6.1f MB\n",
			engineKind, totalMs/epochs, lastLoss,
			float64(s.CacheBytes())/1e6, float64(coll.BytesSent())/1e6)
		for l := range cached {
			fmt.Printf("           layer %d: %5d cached / %5d communicated deps\n",
				l+1, cached[l], communicated[l])
		}
		fmt.Printf("           busy: compute %v, comm %v\n\n",
			coll.Busy(metrics.Compute).Round(1e6), coll.Busy(metrics.Comm).Round(1e6))
		s.Close()
	}
	fmt.Println("Hybrid caches the cheap-to-recompute dependencies and communicates")
	fmt.Println("the expensive ones, landing below both pure strategies.")
}
