// Cost-model exploration: how Algorithm 4's decisions shift with the
// environment. The same graph is planned under a slow Ethernet profile, a
// fast InfiniBand profile, and a tight memory budget; the example prints the
// probed T_v/T_e/T_c factors and the resulting per-layer cache/communicate
// split — the mechanism behind every headline result in the paper.
package main

import (
	"fmt"
	"log"
	"time"

	"neutronstar"
	"neutronstar/internal/costmodel"
)

func main() {
	// Probe the environment factors exactly as Algorithm 4 line 1 does.
	fmt.Println("probed environment factors (seconds per tensor element):")
	for _, env := range []struct {
		name        string
		bytesPerSec float64
		latency     time.Duration
	}{
		{"ecs (slow ethernet)", 48e6, 150 * time.Microsecond},
		{"ibv (fast infiniband)", 1.6e9, 10 * time.Microsecond},
	} {
		c := costmodel.Probe(env.bytesPerSec, env.latency)
		fmt.Printf("  %-22s Tv=%.2e Te=%.2e Tc=%.2e (Tc/Tv=%.1f)\n",
			env.name, c.Tv, c.Te, c.Tc, c.Tc/c.Tv)
	}
	fmt.Println()

	ds, err := neutronstar.LoadDataset("pokec")
	if err != nil {
		log.Fatal(err)
	}
	type scenario struct {
		name string
		cfg  neutronstar.Config
	}
	base := neutronstar.Config{Workers: 8, Engine: neutronstar.EngineHybrid, Seed: 3}
	scenarios := []scenario{
		{"slow network (ecs)", withNet(base, neutronstar.NetworkECS)},
		{"fast network (ibv)", withNet(base, neutronstar.NetworkIBV)},
		{"ecs + 1MB/worker memory budget", withBudget(withNet(base, neutronstar.NetworkECS), 1<<20)},
	}
	for _, sc := range scenarios {
		s, err := neutronstar.NewSession(ds, sc.cfg)
		if err != nil {
			log.Fatal(err)
		}
		cached, communicated := s.DependencySummary()
		fmt.Printf("%s:\n", sc.name)
		for l := range cached {
			total := cached[l] + communicated[l]
			fmt.Printf("  layer %d: %6d/%6d deps cached (%.0f%%)\n",
				l+1, cached[l], total, 100*float64(cached[l])/float64(total))
		}
		fmt.Printf("  replica storage %.2f MB, planning %.1f ms\n\n",
			float64(s.CacheBytes())/1e6, s.PreprocessMillis())
		s.Close()
	}
	fmt.Println("Slower networks raise T_c, pushing dependencies toward caching;")
	fmt.Println("the memory budget caps replication and overflows back to comm.")
}

func withNet(c neutronstar.Config, n neutronstar.NetworkKind) neutronstar.Config {
	c.Network = n
	return c
}

func withBudget(c neutronstar.Config, b int64) neutronstar.Config {
	c.MemBudgetBytes = b
	return c
}
