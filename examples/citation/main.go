// Citation-network scenario: semi-supervised node classification on a
// Cora-like citation graph — the canonical GCN benchmark — with
// early stopping on validation accuracy and a comparison of the three GNN
// architectures the paper evaluates (GCN, GIN, GAT).
package main

import (
	"fmt"
	"log"

	"neutronstar"
)

func main() {
	ds, err := neutronstar.LoadDataset("cora")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("citation graph %s: %d papers, %d citations\n\n",
		ds.Name(), ds.NumVertices(), ds.NumEdges())

	for _, model := range []neutronstar.ModelKind{
		neutronstar.ModelGCN, neutronstar.ModelGIN, neutronstar.ModelGAT,
	} {
		s, err := neutronstar.NewSession(ds, neutronstar.Config{
			Workers: 4,
			Engine:  neutronstar.EngineHybrid,
			Model:   model,
			LR:      0.02,
			Dropout: 0.1,
			Seed:    11,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Early stopping: train until validation accuracy stops improving
		// for `patience` evaluations.
		const maxEpochs, evalEvery, patience = 100, 5, 4
		bestVal, sincelast, stoppedAt := 0.0, 0, maxEpochs
		for ep := 1; ep <= maxEpochs; ep++ {
			s.TrainEpoch()
			if ep%evalEvery != 0 {
				continue
			}
			val := s.Accuracy(neutronstar.SplitVal)
			if val > bestVal {
				bestVal, sincelast = val, 0
			} else {
				sincelast++
				if sincelast >= patience {
					stoppedAt = ep
					break
				}
			}
		}
		fmt.Printf("%-4s stopped at epoch %3d: val %.2f%%, test %.2f%%\n",
			model, stoppedAt, 100*bestVal, 100*s.Accuracy(neutronstar.SplitTest))
		s.Close()
	}
}
