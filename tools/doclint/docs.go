// Doc-to-code cross-checks (the -docs flag): markdown guides drift from the
// code silently, so two contracts are verified mechanically on every CI run.
//
//  1. Flag-to-doc: every value a document passes to -engine (nstrain) or
//     -policy (nsbench) — including comma-separated lists — must name a mode
//     the engine actually registers (engine.ModeNames()). A doc advertising
//     `-engine hybrid5` fails the lint.
//  2. Schema-to-doc: inside regions bracketed by `<!-- doclint:bench-schema -->`
//     and `<!-- doclint:end -->`, every backticked lowercase token must be a
//     JSON field that exists somewhere in the bench.Doc schema (collected by
//     reflection over the struct tags, nested types included). A doc table
//     describing a renamed or misspelled BENCH.json field fails the lint.
package main

import (
	"fmt"
	"os"
	"reflect"
	"regexp"
	"strings"

	"neutronstar/internal/bench"
	"neutronstar/internal/engine"
)

var (
	// policyFlagRe captures the value(s) handed to -engine or -policy in doc
	// prose and code blocks: `-engine hybrid3`, `-policy deptp,deprep`. The
	// leading guard keeps hyphenated prose ("cross-policy equivalence") from
	// matching: a flag's dash is never preceded by a word character.
	policyFlagRe = regexp.MustCompile("(^|[^A-Za-z0-9])-(?:engine|policy)[ =]([a-z0-9,]+)")
	// schemaOpenRe / schemaCloseRe bracket a schema-checked region.
	schemaOpenRe  = regexp.MustCompile(`<!--\s*doclint:bench-schema\s*-->`)
	schemaCloseRe = regexp.MustCompile(`<!--\s*doclint:end\s*-->`)
	// backtickTokenRe matches a backticked json-field-shaped token.
	backtickTokenRe = regexp.MustCompile("`([a-z][a-z0-9_]*)`")
)

// modeNameSet indexes engine.ModeNames() for membership checks.
func modeNameSet() map[string]bool {
	set := make(map[string]bool)
	for _, m := range engine.ModeNames() {
		set[m] = true
	}
	return set
}

// benchFieldSet collects every JSON field name reachable from bench.Doc,
// recursing through pointers, slices, maps and nested structs.
func benchFieldSet() map[string]bool {
	set := make(map[string]bool)
	seen := make(map[reflect.Type]bool)
	var walk func(t reflect.Type)
	walk = func(t reflect.Type) {
		for t.Kind() == reflect.Pointer || t.Kind() == reflect.Slice ||
			t.Kind() == reflect.Map || t.Kind() == reflect.Array {
			t = t.Elem()
		}
		if t.Kind() != reflect.Struct || seen[t] {
			return
		}
		seen[t] = true
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if name, _, _ := strings.Cut(f.Tag.Get("json"), ","); name != "" && name != "-" {
				set[name] = true
			}
			walk(f.Type)
		}
	}
	walk(reflect.TypeOf(bench.Doc{}))
	return set
}

// lintDoc runs both cross-checks over one markdown file's contents.
func lintDoc(path, content string, modes, fields map[string]bool) []string {
	var problems []string
	lineOf := func(off int) int { return 1 + strings.Count(content[:off], "\n") }

	for _, m := range policyFlagRe.FindAllStringSubmatchIndex(content, -1) {
		values := content[m[4]:m[5]]
		for _, v := range strings.Split(values, ",") {
			if v != "" && !modes[v] {
				problems = append(problems, fmt.Sprintf(
					"%s:%d: policy %q is not a registered engine mode (have: %s)",
					path, lineOf(m[0]), v, strings.Join(engine.ModeNames(), ", ")))
			}
		}
	}

	opens := schemaOpenRe.FindAllStringIndex(content, -1)
	closes := schemaCloseRe.FindAllStringIndex(content, -1)
	if len(opens) != len(closes) {
		return append(problems, fmt.Sprintf(
			"%s: %d doclint:bench-schema marker(s) but %d doclint:end marker(s)",
			path, len(opens), len(closes)))
	}
	for i, open := range opens {
		close := closes[i]
		if close[0] < open[1] {
			problems = append(problems, fmt.Sprintf(
				"%s:%d: doclint:end before its doclint:bench-schema", path, lineOf(close[0])))
			continue
		}
		region := content[open[1]:close[0]]
		for _, t := range backtickTokenRe.FindAllStringSubmatchIndex(region, -1) {
			tok := region[t[2]:t[3]]
			if !fields[tok] {
				problems = append(problems, fmt.Sprintf(
					"%s:%d: `%s` is not a field of the BENCH.json schema (v%d)",
					path, lineOf(open[1]+t[0]), tok, bench.SchemaVersion))
			}
		}
	}
	return problems
}

// lintDocs runs the cross-checks over every named markdown file.
func lintDocs(paths []string) ([]string, error) {
	modes, fields := modeNameSet(), benchFieldSet()
	var problems []string
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		problems = append(problems, lintDoc(path, string(data), modes, fields)...)
	}
	return problems, nil
}
