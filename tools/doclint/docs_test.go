package main

import (
	"strings"
	"testing"
)

func lintSnippet(t *testing.T, content string) []string {
	t.Helper()
	return lintDoc("doc.md", content, modeNameSet(), benchFieldSet())
}

func TestDocPolicyCheckAcceptsRegisteredModes(t *testing.T) {
	clean := "Run `nstrain -engine hybrid3` or `nsbench -json B.json -policy deptp,deprep,hybrid4`.\n"
	if ps := lintSnippet(t, clean); len(ps) != 0 {
		t.Fatalf("clean doc flagged: %v", ps)
	}
}

func TestDocPolicyCheckFlagsUnknownMode(t *testing.T) {
	ps := lintSnippet(t, "Use `-engine hybrid5` for the 5-way planner.\n")
	if len(ps) != 1 || !strings.Contains(ps[0], `"hybrid5"`) {
		t.Fatalf("want one hybrid5 problem, got %v", ps)
	}
	// A bad entry hiding inside a comma-separated list is still caught.
	ps = lintSnippet(t, "`nsbench -policy deptp,depwarp`\n")
	if len(ps) != 1 || !strings.Contains(ps[0], `"depwarp"`) {
		t.Fatalf("want one depwarp problem, got %v", ps)
	}
}

func TestDocSchemaCheckValidatesMarkedRegions(t *testing.T) {
	clean := "intro `not_a_field` unchecked outside markers\n" +
		"<!-- doclint:bench-schema -->\n" +
		"| `schema_version` | `wall_median_seconds` | `flips_to_rep` |\n" +
		"| `serving` | `p99_latency_ms` | `crit_path` |\n" +
		"<!-- doclint:end -->\n"
	if ps := lintSnippet(t, clean); len(ps) != 0 {
		t.Fatalf("valid schema region flagged: %v", ps)
	}
	bad := "<!-- doclint:bench-schema -->\n`wall_median_secs` is the median.\n<!-- doclint:end -->\n"
	ps := lintSnippet(t, bad)
	if len(ps) != 1 || !strings.Contains(ps[0], "wall_median_secs") {
		t.Fatalf("want one wall_median_secs problem, got %v", ps)
	}
}

func TestDocSchemaCheckFlagsUnbalancedMarkers(t *testing.T) {
	ps := lintSnippet(t, "<!-- doclint:bench-schema -->\n`runs`\n")
	if len(ps) != 1 || !strings.Contains(ps[0], "marker") {
		t.Fatalf("want one marker problem, got %v", ps)
	}
}

func TestBenchFieldSetCoversNestedTypes(t *testing.T) {
	fields := benchFieldSet()
	for _, f := range []string{
		"schema_version", "runs", "serving", // top level
		"flips_to_tp", "flips_from_rep", // nested ResidualSummary
		"p50_ms", // map-valued StageQuantiles
		"spans",  // obs.CritPath behind a pointer
	} {
		if !fields[f] {
			t.Fatalf("field set is missing %q; reflection walk incomplete", f)
		}
	}
	if fields["not_a_field"] {
		t.Fatal("field set contains a fabricated name")
	}
}
