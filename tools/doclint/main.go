// Command doclint enforces the repository's godoc contract. Each positional
// argument is a package directory that must carry a package doc comment; the
// -symbols flag names directories (comma-separated) where, additionally,
// every exported top-level declaration — functions, methods on exported
// types, types, constants and variables — must have a doc comment.
//
// The -docs flag names markdown files (comma-separated) to cross-check
// against the code: every -engine/-policy value they mention must be a
// registered engine mode, and every backticked token inside a
// `<!-- doclint:bench-schema -->` … `<!-- doclint:end -->` region must be a
// real BENCH.json field (see docs.go).
//
// Usage (mirrors the CI step):
//
//	go run ./tools/doclint -symbols internal/tensor \
//	    -docs README.md,DESIGN.md,EXPERIMENTS.md,POLICIES.md \
//	    internal/tensor internal/bench internal/testkit internal/obs
//
// Exit status: 0 when clean, 1 on missing docs or doc-to-code drift, 2 on
// usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	symbolDirs := flag.String("symbols", "",
		"comma-separated dirs whose exported symbols must all be documented")
	docFiles := flag.String("docs", "",
		"comma-separated markdown files to cross-check against code (policies, bench schema)")
	flag.Parse()
	if flag.NArg() == 0 && *docFiles == "" {
		fmt.Fprintln(os.Stderr, "doclint: no package directories or -docs files given")
		os.Exit(2)
	}
	strict := make(map[string]bool)
	for _, d := range strings.Split(*symbolDirs, ",") {
		if d != "" {
			strict[strings.TrimRight(d, "/")] = true
		}
	}
	var problems []string
	for _, dir := range flag.Args() {
		dir = strings.TrimRight(dir, "/")
		ps, err := lintDir(dir, strict[dir])
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}
	if *docFiles != "" {
		var paths []string
		for _, p := range strings.Split(*docFiles, ",") {
			if p != "" {
				paths = append(paths, p)
			}
		}
		ps, err := lintDocs(paths)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// lintDir parses every non-test Go file in dir and reports missing docs.
func lintDir(dir string, symbols bool) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			problems = append(problems,
				fmt.Sprintf("%s: package %s has no package doc comment", dir, pkg.Name))
		}
		if !symbols {
			continue
		}
		for _, f := range pkg.Files {
			problems = append(problems, lintFile(fset, f)...)
		}
	}
	return problems, nil
}

// lintFile reports exported declarations in f lacking doc comments.
func lintFile(fset *token.FileSet, f *ast.File) []string {
	var problems []string
	missing := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems,
			fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				missing(d.Pos(), "function", funcName(d))
			}
		case *ast.GenDecl:
			// A doc comment on the decl covers every spec in the group
			// (the standard grouped-const idiom).
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !groupDoc && s.Doc == nil {
						missing(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if groupDoc || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							missing(s.Pos(), "value", n.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// exportedReceiver reports whether d is a plain function or a method whose
// receiver type is exported — methods on unexported types are not part of
// the package's godoc surface.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// funcName renders "Name" or "(Recv).Name" for error messages.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + id.Name + ")." + d.Name.Name
	}
	return d.Name.Name
}
