// Command benchdiff compares two BENCH.json documents and fails on
// performance regressions. Four axes are gated: wall_median_seconds,
// bytes_per_epoch, allocs_per_epoch and straggler_index (load balance);
// the latter two only compare when both documents carry them, so older
// baselines stay readable.
//
// Usage:
//
//	benchdiff [-tol 0.15] [-warn-only] BASELINE.json CURRENT.json
//
// Exit codes:
//
//	0 — documents valid, no regression beyond tolerance
//	1 — at least one regression (suppressed to 0 by -warn-only)
//	2 — unreadable or schema-invalid document, or bad usage
//
// -warn-only still prints every regression but exits 0; CI uses it to make
// cross-host baseline comparisons informational while keeping schema
// violations fatal.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"neutronstar/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tol := fs.Float64("tol", 0.15, "regression tolerance (0.15 = fail beyond +15%)")
	warnOnly := fs.Bool("warn-only", false, "report regressions but exit 0 (schema errors still exit 2)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [-tol 0.15] [-warn-only] BASELINE.json CURRENT.json")
		return 2
	}
	base, err := bench.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	cur, err := bench.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	regs := bench.Compare(base, cur, *tol)
	if len(regs) == 0 {
		fmt.Fprintf(stdout, "benchdiff: ok (%d runs compared, tol %.0f%%)\n", len(cur.Runs), *tol*100)
		return 0
	}
	for _, d := range regs {
		fmt.Fprintln(stdout, "REGRESSION", d.String())
	}
	if *warnOnly {
		fmt.Fprintf(stdout, "benchdiff: %d regression(s) beyond %.0f%% (warn-only)\n", len(regs), *tol*100)
		return 0
	}
	fmt.Fprintf(stdout, "benchdiff: %d regression(s) beyond %.0f%%\n", len(regs), *tol*100)
	return 1
}
