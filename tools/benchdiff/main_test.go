package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"neutronstar/internal/bench"
)

// golden is the schema fixture shared with the bench package tests.
const golden = "../../internal/bench/testdata/golden.json"

// perturbed writes a copy of the golden document with mutate applied and
// returns its path.
func perturbed(t *testing.T, mutate func(*bench.Doc)) string {
	t.Helper()
	doc, err := bench.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	mutate(doc)
	path := filepath.Join(t.TempDir(), "cur.json")
	if err := doc.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func runDiff(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestBenchdiffCleanExitsZero(t *testing.T) {
	code, out, _ := runDiff(t, golden, golden)
	if code != 0 {
		t.Fatalf("exit %d comparing a document with itself\n%s", code, out)
	}
	if !strings.Contains(out, "benchdiff: ok") {
		t.Fatalf("stdout = %q", out)
	}
}

func TestBenchdiffRegressionExitsOne(t *testing.T) {
	cur := perturbed(t, func(d *bench.Doc) { d.Runs[0].WallMedianSeconds *= 2 })
	code, out, _ := runDiff(t, golden, cur)
	if code != 1 {
		t.Fatalf("exit %d on a 2x wall regression\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION hybrid-w4/wall_median_seconds") {
		t.Fatalf("stdout = %q", out)
	}
}

func TestBenchdiffWarnOnlySuppressesExitOne(t *testing.T) {
	cur := perturbed(t, func(d *bench.Doc) { d.Runs[0].BytesPerEpoch *= 3 })
	code, out, _ := runDiff(t, "-warn-only", golden, cur)
	if code != 0 {
		t.Fatalf("exit %d with -warn-only\n%s", code, out)
	}
	// The regression must still be reported, just not fatal.
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "warn-only") {
		t.Fatalf("stdout = %q", out)
	}
}

func TestBenchdiffCustomTolerance(t *testing.T) {
	cur := perturbed(t, func(d *bench.Doc) { d.Runs[0].WallMedianSeconds *= 1.3 })
	if code, out, _ := runDiff(t, golden, cur); code != 1 {
		t.Fatalf("exit %d: +30%% should fail the default 15%% tolerance\n%s", code, out)
	}
	if code, out, _ := runDiff(t, "-tol", "0.5", golden, cur); code != 0 {
		t.Fatalf("exit %d: +30%% should pass -tol 0.5\n%s", code, out)
	}
}

func TestBenchdiffSchemaErrorsExitTwo(t *testing.T) {
	t.Run("missing file", func(t *testing.T) {
		code, _, errb := runDiff(t, golden, filepath.Join(t.TempDir(), "absent.json"))
		if code != 2 {
			t.Fatalf("exit %d on a missing file", code)
		}
		if !strings.Contains(errb, "benchdiff:") {
			t.Fatalf("stderr = %q", errb)
		}
	})
	t.Run("invalid schema", func(t *testing.T) {
		bad := filepath.Join(t.TempDir(), "bad.json")
		if err := os.WriteFile(bad, []byte(`{"schema_version": 99, "runs": []}`), 0o644); err != nil {
			t.Fatal(err)
		}
		code, _, errb := runDiff(t, golden, bad)
		if code != 2 {
			t.Fatalf("exit %d on a schema-invalid document", code)
		}
		if !strings.Contains(errb, "schema_version") {
			t.Fatalf("stderr = %q", errb)
		}
	})
	t.Run("warn-only does not mask schema errors", func(t *testing.T) {
		bad := filepath.Join(t.TempDir(), "bad.json")
		if err := os.WriteFile(bad, []byte(`not json`), 0o644); err != nil {
			t.Fatal(err)
		}
		if code, _, _ := runDiff(t, "-warn-only", golden, bad); code != 2 {
			t.Fatalf("exit %d: -warn-only must not suppress schema failures", code)
		}
	})
	t.Run("bad usage", func(t *testing.T) {
		if code, _, _ := runDiff(t, golden); code != 2 {
			t.Fatalf("exit %d with one positional argument", code)
		}
	})
}
